package tracing

import (
	"sort"
	"sync"
)

// Config sizes and scopes a Tracer.
type Config struct {
	// SampleEvery enables head-based sampling: connection k is recorded iff
	// k ≡ 0 (mod SampleEvery). Values ≤ 1 record every connection.
	SampleEvery int
	// TailLatencyNS enables tail capture: a connection that head sampling
	// skipped is still kept if any of its requests' end-to-end latency
	// reaches the threshold. 0 disables tail capture (skipped connections
	// are then not buffered at all).
	TailLatencyNS int64
	// MaxSpans bounds committed-span storage. When the ring fills, the
	// oldest spans are overwritten and SpansDropped counts the loss.
	// 0 means DefaultMaxSpans.
	MaxSpans int
	// Concurrent guards recording with a mutex, for real-goroutine
	// deployments (cmd/hermes-lb). Simulations are single-goroutine per
	// engine and leave it off.
	Concurrent bool
}

// DefaultMaxSpans is the default ring capacity (~48 MB of spans).
const DefaultMaxSpans = 1 << 20

// DefaultConfig records every connection with the default ring bound.
func DefaultConfig() Config {
	return Config{SampleEvery: 1, MaxSpans: DefaultMaxSpans}
}

// connBuf accumulates one in-flight connection's spans until the keep/drop
// decision at close (or Flush).
type connBuf struct {
	id       uint64
	spans    []Span
	sampled  bool  // head-sampled: keep unconditionally
	maxLatNS int64 // worst request latency seen (tail capture)
}

// Stats summarizes a tracer's bookkeeping.
type Stats struct {
	// ConnsSeen counts established connections observed.
	ConnsSeen uint64
	// ConnsKept counts connections committed to the ring.
	ConnsKept uint64
	// SpansCommitted counts spans ever committed (including overwritten).
	SpansCommitted uint64
	// SpansDropped counts ring overwrites (flight-recorder loss).
	SpansDropped uint64
}

// Tracer is the flight recorder. Obtain per-layer handles via KernelTrace,
// WorkerTrace, ScheduleTrace, and MapTrace — all valid on a nil *Tracer
// (they return nil handles, which no-op). A Tracer is single-goroutine
// unless Config.Concurrent is set.
type Tracer struct {
	cfg Config
	mu  *sync.Mutex // non-nil iff Config.Concurrent

	ring []Span // circular committed-span store
	n    uint64 // total spans committed; next slot = n % cap

	conns map[uint64]*connBuf
	free  []*connBuf
	stats Stats
}

// New creates a tracer.
func New(cfg Config) *Tracer {
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	t := &Tracer{
		cfg:   cfg,
		ring:  make([]Span, 0, cfg.MaxSpans),
		conns: make(map[uint64]*connBuf),
	}
	if cfg.Concurrent {
		t.mu = &sync.Mutex{}
	}
	return t
}

func (t *Tracer) lock() {
	if t.mu != nil {
		t.mu.Lock()
	}
}

func (t *Tracer) unlock() {
	if t.mu != nil {
		t.mu.Unlock()
	}
}

// commit appends one span to the ring, overwriting the oldest when full.
func (t *Tracer) commit(s Span) {
	t.stats.SpansCommitted++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
		t.n++
		return
	}
	t.ring[t.n%uint64(cap(t.ring))] = s
	t.n++
	t.stats.SpansDropped++
}

// establish begins tracking a connection (or doesn't, per sampling).
func (t *Tracer) establish(conn uint64, nowNS int64, worker int32, via Via) {
	t.lock()
	defer t.unlock()
	t.stats.ConnsSeen++
	sampled := t.cfg.SampleEvery <= 1 || (t.stats.ConnsSeen-1)%uint64(t.cfg.SampleEvery) == 0
	if !sampled && t.cfg.TailLatencyNS == 0 {
		return // not buffered: tail capture off, head sampling skipped it
	}
	var b *connBuf
	if n := len(t.free); n > 0 {
		b = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		b = &connBuf{spans: make([]Span, 0, 16)}
	}
	b.id, b.sampled, b.maxLatNS = conn, sampled, 0
	b.spans = append(b.spans, Span{
		Conn: conn, Worker: KernelTrack, Kind: KindSYN,
		StartNS: nowNS, EndNS: nowNS, Arg: int64(via), Arg2: int64(worker),
	})
	t.conns[conn] = b
}

// connSpan appends a span to an in-flight connection's buffer (no-op for
// untracked connections).
func (t *Tracer) connSpan(s Span) {
	t.lock()
	defer t.unlock()
	b, ok := t.conns[s.Conn]
	if !ok {
		return
	}
	b.spans = append(b.spans, s)
	if s.Kind == KindServe && s.Arg2 > b.maxLatNS {
		b.maxLatNS = s.Arg2
	}
}

// finish resolves a connection's keep/drop decision and recycles its buffer.
// The caller must hold the lock.
func (t *Tracer) finish(b *connBuf) {
	keep := b.sampled || (t.cfg.TailLatencyNS > 0 && b.maxLatNS >= t.cfg.TailLatencyNS)
	if keep {
		t.stats.ConnsKept++
		for _, s := range b.spans {
			t.commit(s)
		}
	}
	delete(t.conns, b.id)
	b.spans = b.spans[:0]
	t.free = append(t.free, b)
}

// closeConn records the close instant and finalizes the connection.
func (t *Tracer) closeConn(conn uint64, nowNS int64, reset bool) {
	t.lock()
	defer t.unlock()
	b, ok := t.conns[conn]
	if !ok {
		return
	}
	var arg int64
	if reset {
		arg = 1
	}
	b.spans = append(b.spans, Span{
		Conn: conn, Worker: b.lastWorker(), Kind: KindClose,
		StartNS: nowNS, EndNS: nowNS, Arg: arg,
	})
	t.finish(b)
}

// lastWorker is the most recent worker a tracked connection touched (the
// close event's track); kernel track until a worker accepts it.
func (b *connBuf) lastWorker() int32 {
	for i := len(b.spans) - 1; i >= 0; i-- {
		if b.spans[i].Worker != KernelTrack {
			return b.spans[i].Worker
		}
	}
	return KernelTrack
}

// Flush finalizes every still-open connection (keep/drop per the same
// rules, without a close event), in connection-id order so dumps are
// deterministic. Call once after the simulation drains. Safe on nil.
func (t *Tracer) Flush() {
	if t == nil {
		return
	}
	t.lock()
	defer t.unlock()
	ids := make([]uint64, 0, len(t.conns))
	for id := range t.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t.finish(t.conns[id])
	}
}

// Stats returns the tracer's bookkeeping counters. Safe on nil.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.lock()
	defer t.unlock()
	return t.stats
}

// Spans returns the committed spans in export order (sorted by the total
// span order, oldest-surviving first within ties). Safe on nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.lock()
	defer t.unlock()
	out := make([]Span, 0, len(t.ring))
	if t.n > uint64(len(t.ring)) { // ring wrapped: oldest survivor first
		start := t.n % uint64(cap(t.ring))
		out = append(out, t.ring[start:]...)
		out = append(out, t.ring[:start]...)
	} else {
		out = append(out, t.ring...)
	}
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// --- Per-layer handles (nil no-op, one nil check per hook) ---

// KernelTrace records connection-lifecycle events from the netstack.
type KernelTrace struct{ t *Tracer }

// KernelTrace returns the netstack's handle. Safe on nil (returns nil).
func (t *Tracer) KernelTrace() *KernelTrace {
	if t == nil {
		return nil
	}
	return &KernelTrace{t: t}
}

// ConnEstablished records handshake completion: the steering decision (via)
// and the chosen worker socket (KernelTrack for shared sockets). Begins the
// connection's flight record, subject to sampling.
func (k *KernelTrace) ConnEstablished(conn uint64, nowNS int64, worker int32, via Via) {
	if k == nil {
		return
	}
	k.t.establish(conn, nowNS, worker, via)
}

// ConnDropped records a refused SYN (overflow=true: accept-queue overflow;
// false: no listener). Dropped connections have no flight record — the
// instant goes straight to the ring.
func (k *KernelTrace) ConnDropped(nowNS int64, via Via, overflow bool) {
	if k == nil {
		return
	}
	var arg2 int64
	if overflow {
		arg2 = 1
	}
	k.t.lock()
	k.t.commit(Span{Worker: KernelTrack, Kind: KindDrop,
		StartNS: nowNS, EndNS: nowNS, Arg: int64(via), Arg2: arg2})
	k.t.unlock()
}

// WorkerTrace records one worker's events: epoll wakeups, accepts, request
// service, closes. Obtained once per worker at wiring time.
type WorkerTrace struct {
	t  *Tracer
	id int32
}

// WorkerTrace returns worker id's handle. Safe on nil (returns nil).
func (t *Tracer) WorkerTrace(id int) *WorkerTrace {
	if t == nil {
		return nil
	}
	return &WorkerTrace{t: t, id: int32(id)}
}

// Wakeup records one completed epoll_wait that delivered events or woke
// spuriously (timeout-only waits are idle time and are skipped). startNS is
// when the wait began blocking; spurious wakeups (zero events, not a
// timeout) are attributed to this worker — the waiter the wake discipline
// chose.
func (w *WorkerTrace) Wakeup(startNS, endNS int64, events int, timeout bool) {
	if w == nil {
		return
	}
	if events == 0 && timeout {
		return
	}
	var spurious int64
	if events == 0 {
		spurious = 1
	}
	w.t.lock()
	w.t.commit(Span{Worker: w.id, Kind: KindWakeup,
		StartNS: startNS, EndNS: endNS, Arg: int64(events), Arg2: spurious})
	w.t.unlock()
}

// Accept records the worker dequeuing a connection: the accept-queue
// residency span (establishment → accept) plus the accept instant.
func (w *WorkerTrace) Accept(conn uint64, establishedNS, nowNS int64) {
	if w == nil {
		return
	}
	w.t.connSpan(Span{Conn: conn, Worker: w.id, Kind: KindAcceptQueue,
		StartNS: establishedNS, EndNS: nowNS})
	w.t.connSpan(Span{Conn: conn, Worker: w.id, Kind: KindAccept,
		StartNS: nowNS, EndNS: nowNS})
}

// Serve records one request: the notify-wait span (data arrival → service
// start) and the service span (start → completion). The request's
// end-to-end latency (endNS − arrivalNS) feeds tail capture.
func (w *WorkerTrace) Serve(conn uint64, arrivalNS, startNS, endNS int64, probe bool) {
	if w == nil {
		return
	}
	var p int64
	if probe {
		p = 1
	}
	w.t.connSpan(Span{Conn: conn, Worker: w.id, Kind: KindNotifyWait,
		StartNS: arrivalNS, EndNS: startNS, Arg: p})
	w.t.connSpan(Span{Conn: conn, Worker: w.id, Kind: KindServe,
		StartNS: startNS, EndNS: endNS, Arg: p, Arg2: endNS - arrivalNS})
}

// Close records connection teardown (reset=true: RST from shedding, pool
// exhaustion, or crash) and finalizes the connection's flight record.
func (w *WorkerTrace) Close(conn uint64, nowNS int64, reset bool) {
	if w == nil {
		return
	}
	w.t.closeConn(conn, nowNS, reset)
}

// ScheduleTrace records Algorithm 1 passes from the core control loop.
type ScheduleTrace struct{ t *Tracer }

// ScheduleTrace returns the control loop's handle. Safe on nil.
func (t *Tracer) ScheduleTrace() *ScheduleTrace {
	if t == nil {
		return nil
	}
	return &ScheduleTrace{t: t}
}

// Pass records one schedule_and_sync invocation on the running worker's
// track: how many workers passed the cascade out of the table.
func (s *ScheduleTrace) Pass(worker int, nowNS int64, passed, total int) {
	if s == nil {
		return
	}
	s.t.lock()
	s.t.commit(Span{Worker: int32(worker), Kind: KindSchedule,
		StartNS: nowNS, EndNS: nowNS, Arg: int64(passed), Arg2: int64(total)})
	s.t.unlock()
}

// FaultTrace records injected faults and recovery actions from the fault
// layer (internal/faults), so span dumps attribute tail latency to specific
// injected events.
type FaultTrace struct{ t *Tracer }

// FaultTrace returns the fault injector's handle. Safe on nil.
func (t *Tracer) FaultTrace() *FaultTrace {
	if t == nil {
		return nil
	}
	return &FaultTrace{t: t}
}

// Event records one fault/recovery instant on a worker's track (or the
// kernel track for LB-wide faults such as selmap sync stalls). code is the
// fault-layer event code; param is its kind-specific argument (duration,
// multiplier in per-mille, queue cap, ...).
func (f *FaultTrace) Event(worker int32, nowNS int64, code, param int64) {
	if f == nil {
		return
	}
	f.t.lock()
	f.t.commit(Span{Worker: worker, Kind: KindFault,
		StartNS: nowNS, EndNS: nowNS, Arg: code, Arg2: param})
	f.t.unlock()
}

// ProxyTrace records backend-pool events from the reverse-proxy edge
// (internal/proxy): active health probes and backend availability
// transitions. Both sit on the kernel track — backends are peers of the
// steering decision, not of any one worker.
type ProxyTrace struct{ t *Tracer }

// ProxyTrace returns the proxy's handle. Safe on nil (returns nil).
func (t *Tracer) ProxyTrace() *ProxyTrace {
	if t == nil {
		return nil
	}
	return &ProxyTrace{t: t}
}

// Probe records one active health probe against backend b (ok = the probe
// passed within its timeout).
func (p *ProxyTrace) Probe(backend int, startNS, endNS int64, ok bool) {
	if p == nil {
		return
	}
	var arg2 int64
	if ok {
		arg2 = 1
	}
	p.t.lock()
	p.t.commit(Span{Worker: KernelTrack, Kind: KindProbe,
		StartNS: startNS, EndNS: endNS, Arg: int64(backend), Arg2: arg2})
	p.t.unlock()
}

// BackendState records an availability transition for backend b (state is a
// proxy-layer code: health up/down, circuit open/half-open/closed).
func (p *ProxyTrace) BackendState(backend int, nowNS int64, state int64) {
	if p == nil {
		return
	}
	p.t.lock()
	p.t.commit(Span{Worker: KernelTrack, Kind: KindBackendState,
		StartNS: nowNS, EndNS: nowNS, Arg: int64(backend), Arg2: state})
	p.t.unlock()
}

// MapTrace records selection-map syncs from the eBPF layer. The map has no
// clock, so the wiring layer supplies one (the sim engine's Now, or
// wall-clock for real deployments).
type MapTrace struct {
	t   *Tracer
	now func() int64
}

// MapTrace returns a selection-map handle bound to the given clock. Safe on
// nil (returns nil).
func (t *Tracer) MapTrace(now func() int64) *MapTrace {
	if t == nil {
		return nil
	}
	return &MapTrace{t: t, now: now}
}

// Sync records one userspace selection-map update (bits = bitmap popcount).
func (m *MapTrace) Sync(bits int) {
	if m == nil {
		return
	}
	now := m.now()
	m.t.lock()
	m.t.commit(Span{Worker: KernelTrack, Kind: KindSelmapSync,
		StartNS: now, EndNS: now, Arg: int64(bits)})
	m.t.unlock()
}
