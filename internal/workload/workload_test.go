package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"hermes/internal/l7lb"
	"hermes/internal/sim"
)

func TestDistMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(name string, d Dist, tol float64) {
		t.Helper()
		var sum float64
		const n = 200_000
		for i := 0; i < n; i++ {
			sum += d.Sample(rng)
		}
		got := sum / n
		want := d.Mean()
		if math.Abs(got-want)/want > tol {
			t.Errorf("%s: empirical mean %.4g vs analytic %.4g", name, got, want)
		}
	}
	check("const", Const(5), 1e-12)
	check("uniform", Uniform{2, 8}, 0.02)
	check("exp", Exp{MeanVal: 3}, 0.02)
	check("lognormal", LogNormal{Mu: 1, Sigma: 0.5}, 0.05)
	check("pareto", Pareto{XMin: 2, Alpha: 3}, 0.05)
	check("mixture", Mixture{
		Components: []Dist{Const(1), Const(9)},
		Weights:    []float64{0.75, 0.25},
	}, 0.02)
}

func TestParetoInfiniteMean(t *testing.T) {
	if !math.IsInf(Pareto{XMin: 1, Alpha: 0.9}.Mean(), 1) {
		t.Fatal("alpha ≤ 1 Pareto must have infinite mean")
	}
}

func TestMixtureValidate(t *testing.T) {
	if (Mixture{}).Validate() == nil {
		t.Fatal("empty mixture accepted")
	}
	m := Mixture{Components: []Dist{Const(1)}, Weights: []float64{1, 2}}
	if m.Validate() == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(100, 1.2)
	if len(w) != 100 {
		t.Fatal("length")
	}
	sum := 0.0
	for i, v := range w {
		sum += v
		if i > 0 && v > w[i-1] {
			t.Fatal("weights must be non-increasing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	if w[0] < 0.15 {
		t.Fatalf("head tenant share %v too small for s=1.2", w[0])
	}
}

func TestPickWeightedRespectsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[PickWeighted(rng, []float64{0.7, 0.2, 0.1})]++
	}
	if counts[0] < 19000 || counts[2] > 4500 {
		t.Fatalf("weighted pick off: %v", counts)
	}
}

func TestSpecValidate(t *testing.T) {
	ports := []uint16{8080}
	for _, s := range Cases(ports) {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	bad := Case1(nil)
	if bad.Validate() == nil {
		t.Fatal("no ports accepted")
	}
	weird := Case1(ports)
	weird.PortWeights = []float64{0.5, 0.5}
	if weird.Validate() == nil {
		t.Fatal("weight arity mismatch accepted")
	}
	zero := Case1(ports)
	zero.ConnRate = 0
	if zero.Validate() == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestCaseQuadrants(t *testing.T) {
	ports := []uint16{8080}
	c1, c2, c3, c4 := Case1(ports), Case2(ports), Case3(ports), Case4(ports)
	// CPS axis.
	if c1.ConnRate <= c3.ConnRate || c2.ConnRate <= c4.ConnRate {
		t.Fatal("high-CPS cases must out-rate low-CPS cases")
	}
	// Processing-time axis.
	if c2.CostNS.Mean() <= c1.CostNS.Mean() || c4.CostNS.Mean() <= c3.CostNS.Mean() {
		t.Fatal("high-PT cases must out-cost low-PT cases")
	}
}

func TestScaleMultipliesRate(t *testing.T) {
	s := Case1([]uint16{1})
	h := s.Scale(3)
	if h.ConnRate != s.ConnRate*3 {
		t.Fatal("scale broken")
	}
	if h.OfferedRPS() != s.OfferedRPS()*3 {
		t.Fatal("offered RPS does not scale")
	}
}

func TestRegionsMatchTable4(t *testing.T) {
	rs := Regions()
	if len(rs) != 4 {
		t.Fatal("want 4 regions")
	}
	for _, r := range rs {
		sum := 0.0
		for _, s := range r.CaseShare {
			sum += s
		}
		if math.Abs(sum-1) > 0.01 {
			t.Errorf("%s case shares sum to %v", r.Name, sum)
		}
	}
	// Region4 is case-3 dominated (89.07%), Region2 case-4 (82.13%).
	if rs[3].CaseShare[2] < 0.85 || rs[1].CaseShare[3] < 0.8 {
		t.Fatal("region dominances wrong")
	}
	if rs[2].WebSocketShare == 0 {
		t.Fatal("Region3 must carry websockets")
	}
}

func TestRegionSpecsPreserveRPS(t *testing.T) {
	ports := []uint16{1, 2}
	for _, r := range Regions() {
		specs := r.Specs(ports, 100_000)
		var rps float64
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			rps += s.OfferedRPS()
		}
		if math.Abs(rps-100_000)/100_000 > 0.01 {
			t.Errorf("%s offers %v RPS, want 100k", r.Name, rps)
		}
	}
}

func TestRegionSampleShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ports := []uint16{1}
	percentiles := func(r Region) (p50, p99 float64) {
		var procs []float64
		for i := 0; i < 40_000; i++ {
			_, p := r.SampleRequest(rng, ports)
			procs = append(procs, p)
		}
		var s sampleSorter
		s.vals = procs
		return s.pct(50), s.pct(99)
	}
	rs := Regions()
	p50r1, p99r1 := percentiles(rs[0])
	p50r3, p99r3 := percentiles(rs[2])
	// Table 1 shape: Region3 P99 explodes (WebSockets) while P50 stays low.
	if p99r3 < 20*p99r1 {
		t.Fatalf("Region3 P99 %.3gms should dwarf Region1's %.3gms", p99r3/1e6, p99r1/1e6)
	}
	if p50r3 > 100*p50r1 {
		t.Fatalf("Region3 P50 should stay moderate: %.3g vs %.3g", p50r3, p50r1)
	}
}

type sampleSorter struct{ vals []float64 }

func (s *sampleSorter) pct(p float64) float64 {
	vs := append([]float64(nil), s.vals...)
	sort.Float64s(vs)
	return vs[int(p/100*float64(len(vs)-1))]
}

func TestRulesPerPortLongTail(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rules := RulesPerPort(rng, 20_000)
	ones, big := 0, 0
	for _, r := range rules {
		if r < 1 || r > 2000 {
			t.Fatalf("rule count %d out of range", r)
		}
		if r == 1 {
			ones++
		}
		if r > 100 {
			big++
		}
	}
	if ones < 8000 {
		t.Fatalf("most ports should have 1 rule, got %d of 20000", ones)
	}
	if big == 0 {
		t.Fatal("no long tail")
	}
}

func TestGeneratorDrivesLB(t *testing.T) {
	eng := sim.NewEngine(42)
	cfg := l7lb.DefaultConfig(l7lb.ModeHermes)
	cfg.Workers = 8
	lb, err := l7lb.New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()

	spec := Case3([]uint16{8080})
	spec.ConnRate = 500 // keep the test light
	g, err := NewGenerator(lb, spec)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(200 * time.Millisecond)
	eng.RunUntil(int64(3 * time.Second))

	if g.ConnsAttempted == 0 || g.RequestsSent == 0 {
		t.Fatalf("generator idle: %+v", g)
	}
	// Poisson arrivals at 500/s over 200ms ≈ 100 conns.
	if g.ConnsAttempted < 50 || g.ConnsAttempted > 200 {
		t.Fatalf("conns attempted = %d, want ≈100", g.ConnsAttempted)
	}
	if lb.Completed != g.RequestsSent {
		t.Fatalf("completed %d of %d sent", lb.Completed, g.RequestsSent)
	}
	if g.LiveConns != 0 {
		t.Fatalf("%d conns leaked", g.LiveConns)
	}
	if g.PortConns[8080] != g.ConnsAttempted-g.ConnsRejected {
		t.Fatal("per-port accounting broken")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		eng := sim.NewEngine(7)
		cfg := l7lb.DefaultConfig(l7lb.ModeReuseport)
		cfg.Workers = 4
		lb, _ := l7lb.New(eng, cfg)
		lb.Start()
		spec := Case1([]uint16{8080})
		spec.ConnRate = 2000
		g, _ := NewGenerator(lb, spec)
		g.Run(100 * time.Millisecond)
		eng.RunUntil(int64(time.Second))
		return g.RequestsSent, lb.Completed
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 || c1 != c2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", s1, c1, s2, c2)
	}
}

func TestSurgeLagEffect(t *testing.T) {
	eng := sim.NewEngine(9)
	cfg := l7lb.DefaultConfig(l7lb.ModeExclusive)
	cfg.Workers = 8
	lb, err := l7lb.New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()

	spec := DefaultSurge(8080)
	spec.Conns = 2000
	spec.EstablishWindow = 500 * time.Millisecond
	spec.QuietUntil = time.Second
	spec.BurstRequests = 3
	s := NewSurge(lb, spec)
	s.Run()

	// Quiet phase: connections land, nothing processed yet.
	eng.RunUntil(int64(900 * time.Millisecond))
	if s.Established < 1900 {
		t.Fatalf("established %d of 2000", s.Established)
	}
	quietBusy := lb.TotalBusyNS()
	if lb.Completed != 0 {
		t.Fatal("requests completed before burst")
	}

	// Burst: load explodes and concentrates (exclusive inherited imbalance).
	eng.RunUntil(int64(4 * time.Second))
	if s.RequestsSent < 5500 {
		t.Fatalf("burst sent only %d", s.RequestsSent)
	}
	if lb.TotalBusyNS() < quietBusy*10 {
		t.Fatal("burst did not amplify load")
	}
	counts := lb.WorkerConnCounts()
	_ = counts // per-worker imbalance demonstrated in the Fig. 3 bench
	if lb.Completed == 0 {
		t.Fatal("no burst requests completed")
	}
}

func TestGeneratorRunWindowPhases(t *testing.T) {
	eng := sim.NewEngine(21)
	cfg := l7lb.DefaultConfig(l7lb.ModeReuseport)
	cfg.Workers = 4
	lb, _ := l7lb.New(eng, cfg)
	lb.Start()

	spec := Case1([]uint16{8080})
	spec.ConnRate = 10_000
	g, _ := NewGenerator(lb, spec)
	// Arrivals only inside [100ms, 200ms).
	g.RunWindow(100*time.Millisecond, 200*time.Millisecond)

	eng.RunUntil(int64(90 * time.Millisecond))
	if g.ConnsAttempted != 0 {
		t.Fatalf("%d conns before the window", g.ConnsAttempted)
	}
	eng.RunUntil(int64(time.Second))
	// ≈1000 Poisson arrivals in 100ms at 10k/s.
	if g.ConnsAttempted < 800 || g.ConnsAttempted > 1250 {
		t.Fatalf("conns = %d, want ≈1000", g.ConnsAttempted)
	}
}
