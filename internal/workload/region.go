package workload

import "math/rand"

// Region approximates one of the paper's four global regions: a mixture of
// the four case models in the proportions of Table 4, plus Region3's
// WebSocket share (§2.3, Table 1).
type Region struct {
	// Name is the region label.
	Name string
	// CaseShare is the fraction of traffic in cases 1..4 (Table 4 rows).
	CaseShare [4]float64
	// WebSocketShare adds the Region3 special on top of the case mix.
	WebSocketShare float64
}

// Regions returns the four regional mixes with Table 4's case distribution.
func Regions() []Region {
	return []Region{
		{Name: "Region1", CaseShare: [4]float64{0.1945, 0.0055, 0.6561, 0.1439}},
		{Name: "Region2", CaseShare: [4]float64{0.0077, 0.0783, 0.0927, 0.8213}},
		{Name: "Region3", CaseShare: [4]float64{0.066, 0.029, 0.608, 0.297}, WebSocketShare: 0.02},
		{Name: "Region4", CaseShare: [4]float64{0.0281, 0.0741, 0.8907, 0.0071}},
	}
}

// Specs returns the region's constituent specs with connection rates scaled
// so the region's total request rate is totalRPS, split by CaseShare.
func (r Region) Specs(ports []uint16, totalRPS float64) []Spec {
	base := Cases(ports)
	var out []Spec
	for i, s := range base {
		// WebSocket traffic takes its share out of the total; case shares
		// cover the remainder.
		share := r.CaseShare[i] * (1 - r.WebSocketShare)
		if share <= 0 {
			continue
		}
		targetRPS := totalRPS * share
		s.ConnRate *= targetRPS / s.OfferedRPS()
		s.Name = r.Name + "/" + s.Name
		out = append(out, s)
	}
	if r.WebSocketShare > 0 {
		ws := WebSocket(ports)
		ws.ConnRate = totalRPS * r.WebSocketShare / ws.ReqPerConn.Mean()
		ws.Name = r.Name + "/" + ws.Name
		out = append(out, ws)
	}
	return out
}

// SampleRequest draws one (sizeBytes, processingNS) pair from the region's
// request population — the direct way to regenerate Table 1's size and
// processing-time distributions. Sampling is per *request*, so case shares
// weight request counts, matching how the paper's measurements count
// WebSocket connections as single requests.
func (r Region) SampleRequest(rng *rand.Rand, ports []uint16) (size float64, procNS float64) {
	specs := Cases(ports)
	weights := r.CaseShare[:]
	if r.WebSocketShare > 0 {
		specs = append(specs, WebSocket(ports))
		weights = append(append([]float64(nil), weights...), r.WebSocketShare)
	}
	i := PickWeighted(rng, weights)
	s := specs[i]
	return s.SizeBytes.Sample(rng), s.CostNS.Sample(rng)
}

// RulesPerPort samples a forwarding-rule count per tenant port for Fig. A5:
// most ports carry a handful of rules, a long tail carries hundreds
// (the paper's point: rule diversity kills code locality).
func RulesPerPort(rng *rand.Rand, n int) []int {
	out := make([]int, n)
	d := Pareto{XMin: 1, Alpha: 1.2}
	for i := range out {
		v := int(d.Sample(rng))
		if v > 2000 {
			v = 2000
		}
		out[i] = v
	}
	return out
}
