package workload

import (
	"math/rand"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/l7lb"
)

// Generator replays a Spec against one LB in open loop: Poisson connection
// arrivals, scheduled request trains per connection, FIN after the last
// request. Open loop is what traffic replay at a fixed rate means (§6.2
// "replayed traffic at 2 to 3 times the original rate"): an overloaded LB
// keeps receiving traffic and its queues grow, exactly as in production.
type Generator struct {
	lb   *l7lb.LB
	spec Spec
	rng  *rand.Rand

	srcSeq uint32

	// ConnsAttempted counts SYNs sent.
	ConnsAttempted uint64
	// ConnsRejected counts SYNs refused (queue overflow).
	ConnsRejected uint64
	// RequestsSent counts requests delivered (probes excluded).
	RequestsSent uint64
	// LiveConns tracks currently open generated connections.
	LiveConns int
	// PortConns / PortRequests break arrivals down by tenant port.
	PortConns    map[uint16]uint64
	PortRequests map[uint16]uint64

	// Free lists for the arrival-chain and request-train state objects.
	// Each carries its own pre-bound timer callback, so the open-loop
	// steady state — one timer per arrival, one per request — schedules no
	// closures: allocation is bounded by peak concurrency, not event count.
	chainFree []*connChain
	trainFree []*reqTrain
}

// connChain is one Run/RunWindow arrival chain: exactly one timer is
// outstanding per chain, so the object (and its pre-bound fire) is recycled
// when the chain passes its window end.
type connChain struct {
	g    *Generator
	next int64
	end  int64
	fire func()
}

// reqTrain is one connection's request train: exactly one timer outstanding
// per live train, recycled when the train finishes or its connection dies.
type reqTrain struct {
	g     *Generator
	ref   kernel.ConnRef
	port  uint16
	total int
	idx   int
	fire  func()
}

// NewGenerator builds a generator for the spec. The generator derives its
// randomness from the LB's engine RNG, so a run is fully determined by the
// engine seed.
func NewGenerator(lb *l7lb.LB, spec Spec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Generator{
		lb:           lb,
		spec:         spec,
		rng:          lb.Eng.Rand(),
		PortConns:    make(map[uint16]uint64),
		PortRequests: make(map[uint16]uint64),
	}, nil
}

// Run schedules connection arrivals over the window [now, now+d). Request
// trains may extend past the window; run the engine as long as you want to
// observe them.
func (g *Generator) Run(d time.Duration) {
	g.scheduleNextConn(g.lb.Eng.Now(), g.lb.Eng.Now()+int64(d))
}

// RunWindow schedules arrivals over the absolute virtual window
// [start, end), for phased traffic (diurnal slices, staged surges). start
// must not be in the engine's past.
func (g *Generator) RunWindow(start, end time.Duration) {
	g.scheduleNextConn(int64(start), int64(end))
}

func (g *Generator) scheduleNextConn(prev, end int64) {
	var ch *connChain
	if n := len(g.chainFree); n > 0 {
		ch = g.chainFree[n-1]
		g.chainFree[n-1] = nil
		g.chainFree = g.chainFree[:n-1]
	} else {
		ch = &connChain{g: g}
		ch.fire = ch.run
	}
	ch.end = end
	ch.advance(prev)
}

// advance draws the next Poisson gap and schedules the chain's single timer,
// retiring the chain once it crosses the window end.
func (ch *connChain) advance(prev int64) {
	g := ch.g
	gap := int64(g.rng.ExpFloat64() * float64(time.Second) / g.spec.ConnRate)
	next := prev + gap
	if next >= ch.end {
		ch.end = 0
		g.chainFree = append(g.chainFree, ch)
		return
	}
	ch.next = next
	g.lb.Eng.At(next, ch.fire)
}

func (ch *connChain) run() {
	ch.g.openConn()
	ch.advance(ch.next)
}

func (g *Generator) pickPort() uint16 {
	if g.spec.PortWeights != nil {
		return g.spec.Ports[PickWeighted(g.rng, g.spec.PortWeights)]
	}
	return g.spec.Ports[g.rng.Intn(len(g.spec.Ports))]
}

func (g *Generator) openConn() {
	g.srcSeq++
	port := g.pickPort()
	tuple := kernel.FourTuple{
		SrcIP:   g.rng.Uint32(),
		SrcPort: uint16(1024 + g.srcSeq%60000),
		DstIP:   0x0a00_0001,
		DstPort: port,
	}
	g.ConnsAttempted++
	conn, ok := g.lb.NS.DeliverSYN(tuple, nil)
	if !ok {
		g.ConnsRejected++
		return
	}
	g.LiveConns++
	g.PortConns[port]++

	reqs := int(g.spec.ReqPerConn.Sample(g.rng))
	if reqs < 1 {
		reqs = 1
	}
	delay := int64(g.spec.FirstReqDelayNS.Sample(g.rng))

	var t *reqTrain
	if n := len(g.trainFree); n > 0 {
		t = g.trainFree[n-1]
		g.trainFree[n-1] = nil
		g.trainFree = g.trainFree[:n-1]
	} else {
		t = &reqTrain{g: g}
		t.fire = t.run
	}
	// The train holds a checked ref, not a bare *Conn: the connection may be
	// reset — and its pooled object recycled into a different connection —
	// before the timer fires.
	t.ref, t.port, t.total, t.idx = conn.Ref(), port, reqs, 1
	t.schedule(g.lb.Eng.Now() + delay)
}

func (t *reqTrain) schedule(at int64) {
	if now := t.g.lb.Eng.Now(); at < now {
		at = now
	}
	t.g.lb.Eng.At(at, t.fire)
}

// retire recycles a finished train (last request sent, or connection dead).
func (t *reqTrain) retire() {
	g := t.g
	g.LiveConns--
	t.ref = kernel.ConnRef{}
	g.trainFree = append(g.trainFree, t)
}

func (t *reqTrain) run() {
	g := t.g
	conn := t.ref.Get()
	if conn == nil || conn.Sock().Closed() {
		t.retire()
		return
	}
	last := t.idx == t.total
	g.RequestsSent++
	g.PortRequests[t.port]++
	g.lb.NS.DeliverData(conn, l7lb.Work{
		ArrivalNS: g.lb.Eng.Now(),
		Cost:      time.Duration(g.spec.CostNS.Sample(g.rng)),
		Size:      int(g.spec.SizeBytes.Sample(g.rng)),
		RespSize:  int(g.spec.RespBytes.Sample(g.rng)),
		Close:     last,
		Tenant:    t.port,
	})
	if last {
		t.retire()
		return
	}
	gap := int64(g.spec.InterReqNS.Sample(g.rng))
	t.idx++
	t.schedule(g.lb.Eng.Now() + gap)
}
