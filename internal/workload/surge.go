package workload

import (
	"math/rand"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/l7lb"
)

// SurgeSpec models the lag effect of Fig. 3: a large population of
// long-lived connections is established quietly, then — when some external
// condition fires (the paper's example: quantitative trading) — all of them
// burst requests at once. CPU imbalance inherited from uneven connection
// placement is amplified exactly at the burst.
type SurgeSpec struct {
	// Conns is the long-lived connection population.
	Conns int
	// Port is the tenant port.
	Port uint16
	// EstablishWindow is how long the population takes to build up.
	EstablishWindow time.Duration
	// QuietUntil is the virtual time at which the burst fires (absolute).
	QuietUntil time.Duration
	// BurstRequests is requests per connection in the burst.
	BurstRequests int
	// BurstWindow spreads each connection's burst start uniformly.
	BurstWindow time.Duration
	// BurstCostNS samples per-request CPU during the burst.
	BurstCostNS Dist
	// BurstInterReqNS samples intra-burst request spacing.
	BurstInterReqNS Dist
}

// DefaultSurge returns the Fig. 3 scenario sized for a 32-core LB.
func DefaultSurge(port uint16) SurgeSpec {
	return SurgeSpec{
		Conns:           20_000,
		Port:            port,
		EstablishWindow: 2 * time.Second,
		QuietUntil:      4 * time.Second,
		BurstRequests:   10,
		BurstWindow:     200 * time.Millisecond,
		BurstCostNS:     Exp{MeanVal: 120 * us},
		BurstInterReqNS: Exp{MeanVal: 2 * ms},
	}
}

// Surge drives a SurgeSpec against an LB.
type Surge struct {
	lb   *l7lb.LB
	spec SurgeSpec
	rng  *rand.Rand

	// Established counts successfully opened connections.
	Established int
	// RequestsSent counts burst requests delivered.
	RequestsSent uint64

	// conns holds checked refs: the population is retained across virtual
	// time, and a reset connection's pooled object may be recycled.
	conns []kernel.ConnRef
}

// NewSurge builds the surge driver.
func NewSurge(lb *l7lb.LB, spec SurgeSpec) *Surge {
	return &Surge{lb: lb, spec: spec, rng: lb.Eng.Rand()}
}

// Run schedules the establishment phase and the burst.
func (s *Surge) Run() {
	start := s.lb.Eng.Now()
	for i := 0; i < s.spec.Conns; i++ {
		i := i
		at := start + int64(float64(s.spec.EstablishWindow)*float64(i)/float64(s.spec.Conns))
		s.lb.Eng.At(at, func() {
			tuple := kernel.FourTuple{
				SrcIP:   s.rng.Uint32(),
				SrcPort: uint16(1024 + i%60000),
				DstIP:   0x0a00_0001,
				DstPort: s.spec.Port,
			}
			if conn, ok := s.lb.NS.DeliverSYN(tuple, nil); ok {
				s.Established++
				s.conns = append(s.conns, conn.Ref())
			}
		})
	}
	s.lb.Eng.At(start+int64(s.spec.QuietUntil), func() { s.burst() })
}

func (s *Surge) burst() {
	for _, ref := range s.conns {
		ref := ref
		offset := int64(s.rng.Float64() * float64(s.spec.BurstWindow))
		s.lb.Eng.After(time.Duration(offset), func() {
			s.sendBurstReq(ref, s.spec.BurstRequests)
		})
	}
}

func (s *Surge) sendBurstReq(ref kernel.ConnRef, remaining int) {
	conn := ref.Get()
	if remaining == 0 || conn == nil || conn.Sock().Closed() {
		return
	}
	s.RequestsSent++
	s.lb.NS.DeliverData(conn, l7lb.Work{
		ArrivalNS: s.lb.Eng.Now(),
		Cost:      time.Duration(s.spec.BurstCostNS.Sample(s.rng)),
		Size:      300,
		RespSize:  900,
		Close:     remaining == 1,
		Tenant:    s.spec.Port,
	})
	gap := time.Duration(s.spec.BurstInterReqNS.Sample(s.rng))
	s.lb.Eng.After(gap, func() { s.sendBurstReq(ref, remaining-1) })
}
