package workload

import (
	"fmt"
	"time"
)

// Spec describes one traffic model in the open-loop form the paper uses for
// replay: connections arrive as a Poisson process at ConnRate; each carries
// a sampled number of requests at sampled intervals; each request carries a
// sampled CPU cost and sizes. The last request closes the connection.
type Spec struct {
	// Name labels the model in harness output.
	Name string
	// ConnRate is mean new connections per second (the paper's CPS axis).
	ConnRate float64
	// ReqPerConn samples the number of requests a connection carries (≥1).
	ReqPerConn Dist
	// FirstReqDelayNS samples ns between connection establishment and its
	// first request.
	FirstReqDelayNS Dist
	// InterReqNS samples ns between consecutive requests on a connection.
	InterReqNS Dist
	// CostNS samples per-request worker CPU time in ns (the paper's
	// processing-time axis).
	CostNS Dist
	// SizeBytes / RespBytes sample request/response sizes.
	SizeBytes Dist
	RespBytes Dist
	// Ports are the tenant ports traffic targets; PortWeights skews tenant
	// shares (nil = uniform). §7: top tenants carry 40/28/22%.
	Ports       []uint16
	PortWeights []float64
}

// Scale returns the spec with connection rate multiplied by f — the paper's
// ×2 "medium" and ×3 "heavy" replay levels.
func (s Spec) Scale(f float64) Spec {
	s.ConnRate *= f
	s.Name = fmt.Sprintf("%s x%.3g", s.Name, f)
	return s
}

// OfferedRPS estimates the request rate this spec offers.
func (s Spec) OfferedRPS() float64 { return s.ConnRate * s.ReqPerConn.Mean() }

// OfferedCPU estimates CPU-seconds per second of offered work.
func (s Spec) OfferedCPU() float64 { return s.OfferedRPS() * s.CostNS.Mean() / 1e9 }

// Validate reports the first invalid field.
func (s Spec) Validate() error {
	if s.ConnRate <= 0 {
		return fmt.Errorf("workload: ConnRate must be positive")
	}
	if len(s.Ports) == 0 {
		return fmt.Errorf("workload: at least one port required")
	}
	if s.PortWeights != nil && len(s.PortWeights) != len(s.Ports) {
		return fmt.Errorf("workload: %d weights for %d ports", len(s.PortWeights), len(s.Ports))
	}
	for _, d := range []Dist{s.ReqPerConn, s.FirstReqDelayNS, s.InterReqNS, s.CostNS, s.SizeBytes, s.RespBytes} {
		if d == nil {
			return fmt.Errorf("workload: %s: all distributions must be set", s.Name)
		}
	}
	return nil
}

const (
	us = float64(time.Microsecond)
	ms = float64(time.Millisecond)
)

// The four case models of Table 3, parameterized for the paper's testbed
// shape (32-core LB). Rates are the "light" level; Scale(2)/Scale(3) give
// medium/heavy. Absolute numbers are calibrated to our cost model, not the
// paper's hardware; the CPS×cost quadrant each case occupies is what
// matters.

// Case1 is high CPS, low processing time: stress tests and traffic spikes
// (§6.2). One short request per connection, high connection rate.
func Case1(ports []uint16) Spec {
	return Spec{
		Name:            "case1-hiCPS-loPT",
		ConnRate:        160_000,
		ReqPerConn:      Const(1),
		FirstReqDelayNS: Exp{MeanVal: 50 * us},
		InterReqNS:      Const(0),
		CostNS:          Exp{MeanVal: 90 * us},
		SizeBytes:       Pareto{XMin: 200, Alpha: 2.5},
		RespBytes:       Pareto{XMin: 600, Alpha: 2.2},
		Ports:           ports,
	}
}

// Case2 is high CPS, high processing time: spike scenarios with expensive
// tasks (compression); a heavy tail hangs workers.
func Case2(ports []uint16) Spec {
	return Spec{
		Name:            "case2-hiCPS-hiPT",
		ConnRate:        28_000,
		ReqPerConn:      Const(1),
		FirstReqDelayNS: Exp{MeanVal: 50 * us},
		InterReqNS:      Const(0),
		// Mostly moderate work, a 3ms compression class, and a rare
		// >100ms class that hangs whole workers (the §5.2.1 pathology).
		CostNS: Mixture{
			Components: []Dist{Exp{MeanVal: 120 * us}, Exp{MeanVal: 3 * ms}, Exp{MeanVal: 120 * ms}},
			Weights:    []float64{0.969, 0.03, 0.001},
		},
		SizeBytes: Pareto{XMin: 800, Alpha: 1.8},
		RespBytes: Pareto{XMin: 2000, Alpha: 1.8},
		Ports:     ports,
	}
}

// Case3 is low CPS, low processing time: finance/chat long-lived
// connections carrying many cheap requests. Most production traffic
// (Table 4) looks like this.
func Case3(ports []uint16) Spec {
	return Spec{
		Name:            "case3-loCPS-loPT",
		ConnRate:        2_000,
		ReqPerConn:      Uniform{Lo: 64, Hi: 128},
		FirstReqDelayNS: Exp{MeanVal: 1 * ms},
		InterReqNS:      Exp{MeanVal: 5 * ms},
		CostNS:          Exp{MeanVal: 30 * us},
		SizeBytes:       Pareto{XMin: 150, Alpha: 2.8},
		RespBytes:       Pareto{XMin: 300, Alpha: 2.5},
		Ports:           ports,
	}
}

// Case4 is low CPS, high processing time: web services with TLS handshakes
// and regex routing; expensive established connections cannot migrate.
func Case4(ports []uint16) Spec {
	return Spec{
		Name:            "case4-loCPS-hiPT",
		ConnRate:        1_000,
		ReqPerConn:      Uniform{Lo: 32, Hi: 48},
		FirstReqDelayNS: Exp{MeanVal: 2 * ms},
		InterReqNS:      Exp{MeanVal: 20 * ms},
		CostNS:          LogNormal{Mu: 12.3, Sigma: 1.1}, // mean ≈ 400µs, long tail
		SizeBytes:       Pareto{XMin: 700, Alpha: 2.2},
		RespBytes:       Pareto{XMin: 4000, Alpha: 1.9},
		Ports:           ports,
	}
}

// WebSocket is the Region3 special (§2.3): one huge, long request per
// connection — small share of requests, enormous P99 size and time.
func WebSocket(ports []uint16) Spec {
	return Spec{
		Name:            "websocket",
		ConnRate:        50,
		ReqPerConn:      Const(1),
		FirstReqDelayNS: Exp{MeanVal: 5 * ms},
		InterReqNS:      Const(0),
		CostNS:          LogNormal{Mu: 18.5, Sigma: 1.5}, // median ≈ 108ms, P99 ≈ seconds
		SizeBytes:       Pareto{XMin: 20_000, Alpha: 1.6},
		RespBytes:       Pareto{XMin: 20_000, Alpha: 1.6},
		Ports:           ports,
	}
}

// Cases returns the four Table 3 models in order.
func Cases(ports []uint16) []Spec {
	return []Spec{Case1(ports), Case2(ports), Case3(ports), Case4(ports)}
}
