// Package workload generates the multi-tenant traffic the evaluation runs
// against: the four CPS × processing-time case models of Table 3, regional
// mixes approximating Table 4, Zipf-skewed tenants, long-lived-connection
// surges (Fig. 3), and the forwarding-rules-per-port distribution (Fig. A5).
// All generation is driven by the simulation engine's seeded RNG, so every
// workload is reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a one-dimensional sampling distribution.
type Dist interface {
	Sample(r *rand.Rand) float64
	// Mean returns the distribution's expectation (for load accounting).
	Mean() float64
}

// Const is a degenerate point distribution.
type Const float64

// Sample implements Dist.
func (c Const) Sample(*rand.Rand) float64 { return float64(c) }

// Mean implements Dist.
func (c Const) Mean() float64 { return float64(c) }

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exp is an exponential distribution with the given mean.
type Exp struct{ MeanVal float64 }

// Sample implements Dist.
func (e Exp) Sample(r *rand.Rand) float64 { return r.ExpFloat64() * e.MeanVal }

// Mean implements Dist.
func (e Exp) Mean() float64 { return e.MeanVal }

// LogNormal has parameters of the underlying normal (heavy-tailed
// processing times, Table 1).
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Pareto is a bounded-minimum power-law tail (request sizes).
type Pareto struct {
	XMin  float64
	Alpha float64
}

// Sample implements Dist.
func (p Pareto) Sample(r *rand.Rand) float64 {
	return p.XMin / math.Pow(1-r.Float64(), 1/p.Alpha)
}

// Mean implements Dist.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.XMin / (p.Alpha - 1)
}

// Mixture samples from component i with probability Weights[i].
type Mixture struct {
	Components []Dist
	Weights    []float64
}

// Sample implements Dist.
func (m Mixture) Sample(r *rand.Rand) float64 {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range m.Weights {
		if x < w {
			return m.Components[i].Sample(r)
		}
		x -= w
	}
	return m.Components[len(m.Components)-1].Sample(r)
}

// Mean implements Dist.
func (m Mixture) Mean() float64 {
	total, acc := 0.0, 0.0
	for i, w := range m.Weights {
		total += w
		acc += w * m.Components[i].Mean()
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// Validate checks component/weight arity.
func (m Mixture) Validate() error {
	if len(m.Components) == 0 || len(m.Components) != len(m.Weights) {
		return fmt.Errorf("workload: mixture needs matching components (%d) and weights (%d)",
			len(m.Components), len(m.Weights))
	}
	return nil
}

// ZipfWeights returns n weights following a Zipf law with exponent s — the
// heavily skewed tenant shares of §7 (top tenants carrying 40/28/22% of
// traffic).
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// PickWeighted returns an index sampled according to weights (assumed
// normalized or not — handled either way).
func PickWeighted(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}
