package httpx

import (
	"errors"
	"strings"
	"testing"
)

// A proxy feeds this parser partial reads; every prefix of a valid response
// must report ErrIncomplete, never a spurious success or ErrMalformed.
func TestParseResponseIncompleteDrip(t *testing.T) {
	full := "HTTP/1.1 200 OK\r\nContent-Length: 6\r\nServer: b1\r\n\r\nstream"
	for cut := 0; cut < len(full); cut++ {
		resp, _, err := ParseResponse([]byte(full[:cut]))
		if !errors.Is(err, ErrIncomplete) {
			t.Fatalf("cut=%d: resp=%v err=%v, want ErrIncomplete", cut, resp, err)
		}
	}
	resp, n, err := ParseResponse([]byte(full))
	if err != nil || n != len(full) || string(resp.Body) != "stream" {
		t.Fatalf("full parse: %+v n=%d err=%v", resp, n, err)
	}
}

func TestParseResponseMalformed(t *testing.T) {
	cases := []string{
		"HTTP/1.1\r\n\r\n",                               // no status code
		"HTTP/1.1 20x OK\r\n\r\n",                        // non-numeric status
		"HTTP/1.1 42 Answer\r\n\r\n",                     // status below 100
		"HTTP/1.1 200 OK\r\nBad Header: x\r\n\r\n",       // space in header name
		"HTTP/1.1 200 OK\r\nNoColon\r\n\r\n",             // header without colon
		"HTTP/1.1 200 OK\r\nContent-Length: two\r\n\r\n", // non-numeric length
		"HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n",  // negative length
	}
	for _, c := range cases {
		if _, _, err := ParseResponse([]byte(c)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%q: err = %v, want ErrMalformed", c, err)
		}
	}
}

// A Content-Length too large for int must be rejected as malformed, not
// wrapped into a negative size or treated as incomplete forever.
func TestContentLengthOverflow(t *testing.T) {
	raw := "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n"
	if _, _, err := ParseRequest([]byte(raw)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("overflowing Content-Length: %v, want ErrMalformed", err)
	}
	resp := "HTTP/1.1 200 OK\r\nContent-Length: 99999999999999999999\r\n\r\n"
	if _, _, err := ParseResponse([]byte(resp)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("overflowing response Content-Length: %v, want ErrMalformed", err)
	}
}

// A huge declared body with only a prefix on the wire is incomplete — the
// caller (the proxy's serve loop) enforces its own body cap and answers 413
// before buffering the whole thing.
func TestOversizedBodyDeclaredIncomplete(t *testing.T) {
	raw := "POST /upload HTTP/1.1\r\nContent-Length: 10485760\r\n\r\n" + strings.Repeat("x", 1024)
	if _, _, err := ParseRequest([]byte(raw)); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("partial oversized body: %v, want ErrIncomplete", err)
	}
}

// The header-section bound is inclusive at exactly MaxHeaderBytes and
// rejects one byte over, whether or not the terminator ever arrives.
func TestHeaderBoundExact(t *testing.T) {
	// Build a request whose CRLFCRLF lands exactly at index MaxHeaderBytes.
	prefix := "GET / HTTP/1.1\r\nX-Pad: "
	pad := MaxHeaderBytes - len(prefix)
	atBound := prefix + strings.Repeat("a", pad) + "\r\n\r\n"
	if _, _, err := ParseRequest([]byte(atBound)); err != nil {
		t.Fatalf("header ending exactly at the bound rejected: %v", err)
	}
	overBound := prefix + strings.Repeat("a", pad+1) + "\r\n\r\n"
	if _, _, err := ParseRequest([]byte(overBound)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("header one byte over the bound: %v, want ErrMalformed", err)
	}
}

// Keep-alive upstream connections deliver back-to-back responses; each parse
// must consume exactly one.
func TestParsePipelinedResponses(t *testing.T) {
	one := (&Response{Status: 200, Body: []byte("first")}).Append(nil)
	two := (&Response{Status: 404, Body: []byte("second!")}).Append(nil)
	wire := append(append([]byte(nil), one...), two...)

	r1, n1, err := ParseResponse(wire)
	if err != nil || r1.Status != 200 || string(r1.Body) != "first" {
		t.Fatalf("first: %+v err=%v", r1, err)
	}
	r2, n2, err := ParseResponse(wire[n1:])
	if err != nil || r2.Status != 404 || string(r2.Body) != "second!" {
		t.Fatalf("second: %+v err=%v", r2, err)
	}
	if n1+n2 != len(wire) {
		t.Fatalf("consumed %d+%d of %d", n1, n2, len(wire))
	}
}

// Sloppy request lines (doubled spaces, missing target) must not slip
// through as empty fields.
func TestRequestLineWhitespace(t *testing.T) {
	cases := []string{
		"GET  / HTTP/1.1\r\n\r\n", // double space → empty target
		"GET / \r\n\r\n",          // trailing space, no proto
		"GET  HTTP/1.1\r\n\r\n",   // missing target entirely
		"\r\n\r\n",                // empty request line
	}
	for _, c := range cases {
		if req, _, err := ParseRequest([]byte(c)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%q: parsed %+v err=%v, want ErrMalformed", c, req, err)
		}
	}
}

// Zero-length bodies: Content-Length: 0 and absent Content-Length both
// consume exactly the header section.
func TestZeroLengthBody(t *testing.T) {
	raw := "POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\nNEXT"
	req, n, err := ParseRequest([]byte(raw))
	if err != nil || len(req.Body) != 0 || n != len(raw)-len("NEXT") {
		t.Fatalf("explicit zero body: %+v n=%d err=%v", req, n, err)
	}
}
