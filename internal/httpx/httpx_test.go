package httpx

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleGET(t *testing.T) {
	raw := []byte("GET /index.html?q=1 HTTP/1.1\r\nHost: example.com\r\nX-Tenant: t42\r\n\r\n")
	req, n, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Fatalf("consumed %d of %d", n, len(raw))
	}
	if req.Method != "GET" || req.Target != "/index.html?q=1" || req.Proto != "HTTP/1.1" {
		t.Fatalf("request line: %+v", req)
	}
	if req.Host() != "example.com" {
		t.Fatalf("host = %q", req.Host())
	}
	if req.Path() != "/index.html" {
		t.Fatalf("path = %q", req.Path())
	}
	if v, ok := req.Get("x-tenant"); !ok || v != "t42" {
		t.Fatalf("case-insensitive get: %q %v", v, ok)
	}
	if _, ok := req.Get("missing"); ok {
		t.Fatal("missing header found")
	}
	if len(req.Body) != 0 {
		t.Fatal("unexpected body")
	}
}

func TestParsePOSTWithBody(t *testing.T) {
	raw := []byte("POST /api HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhelloTRAILING")
	req, n, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Body) != "hello" {
		t.Fatalf("body = %q", req.Body)
	}
	if n != len(raw)-len("TRAILING") {
		t.Fatalf("consumed %d", n)
	}
}

func TestParsePipelined(t *testing.T) {
	raw := []byte("GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n")
	r1, n1, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	r2, n2, err := ParseRequest(raw[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if r1.Target != "/a" || r2.Target != "/b" || n1+n2 != len(raw) {
		t.Fatalf("pipelined parse: %q %q %d %d", r1.Target, r2.Target, n1, n2)
	}
}

func TestParseIncomplete(t *testing.T) {
	full := "POST /api HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody"
	for cut := 0; cut < len(full); cut++ {
		_, _, err := ParseRequest([]byte(full[:cut]))
		if !errors.Is(err, ErrIncomplete) {
			t.Fatalf("cut=%d: err = %v, want ErrIncomplete", cut, err)
		}
	}
	if _, _, err := ParseRequest([]byte(full)); err != nil {
		t.Fatalf("full parse: %v", err)
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []string{
		"GARBAGE\r\n\r\n",
		"GET /\r\n\r\n",                           // missing proto
		" GET / HTTP/1.1\r\n\r\n",                 // leading space → empty method
		"GET / HTTP/1.1\r\nBad Header: x\r\n\r\n", // space in name
		"GET / HTTP/1.1\r\nNoColon\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
	}
	for _, c := range cases {
		if _, _, err := ParseRequest([]byte(c)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%q: err = %v, want ErrMalformed", c, err)
		}
	}
}

func TestHeaderSectionBound(t *testing.T) {
	huge := "GET / HTTP/1.1\r\nX: " + strings.Repeat("a", MaxHeaderBytes+10)
	if _, _, err := ParseRequest([]byte(huge)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized incomplete header: %v", err)
	}
	withEnd := "GET / HTTP/1.1\r\nX: " + strings.Repeat("a", MaxHeaderBytes+10) + "\r\n\r\n"
	if _, _, err := ParseRequest([]byte(withEnd)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized complete header: %v", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Method: "POST",
		Target: "/submit",
		Headers: []Header{
			{Name: "Host", Value: "svc.internal"},
			{Name: "X-Req-Id", Value: "7"},
		},
		Body: []byte("payload!"),
	}
	wire := req.Append(nil)
	back, n, err := ParseRequest(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d", n, len(wire))
	}
	if back.Method != "POST" || back.Target != "/submit" || back.Proto != "HTTP/1.1" {
		t.Fatalf("round trip: %+v", back)
	}
	if !bytes.Equal(back.Body, req.Body) {
		t.Fatalf("body: %q", back.Body)
	}
	if v, _ := back.Get("Content-Length"); v != "8" {
		t.Fatalf("auto Content-Length = %q", v)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{Status: 200, Body: []byte("ok"), Headers: []Header{{Name: "Server", Value: "hermes-lb"}}}
	wire := resp.Append(nil)
	back, n, err := ParseResponse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) || back.Status != 200 || back.Reason != "OK" || string(back.Body) != "ok" {
		t.Fatalf("round trip: %+v (n=%d)", back, n)
	}
	if v, ok := back.Get("server"); !ok || v != "hermes-lb" {
		t.Fatalf("server header: %q %v", v, ok)
	}
}

func TestResponseStatusLineVariants(t *testing.T) {
	if _, _, err := ParseResponse([]byte("HTTP/1.1 204 No Content\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseResponse([]byte("NOTHTTP 200 OK\r\n\r\n")); !errors.Is(err, ErrMalformed) {
		t.Fatal("bad proto accepted")
	}
	if _, _, err := ParseResponse([]byte("HTTP/1.1 9999 Weird\r\n\r\n")); !errors.Is(err, ErrMalformed) {
		t.Fatal("bad status accepted")
	}
}

func TestKeepAliveSemantics(t *testing.T) {
	mk := func(proto, conn string) *Request {
		r := &Request{Method: "GET", Target: "/", Proto: proto}
		if conn != "" {
			r.Headers = []Header{{Name: "Connection", Value: conn}}
		}
		return r
	}
	cases := []struct {
		r    *Request
		want bool
	}{
		{mk("HTTP/1.1", ""), true},
		{mk("HTTP/1.0", ""), false},
		{mk("HTTP/1.1", "close"), false},
		{mk("HTTP/1.1", "keep-alive"), true},
		{mk("HTTP/1.0", "keep-alive"), true},
	}
	for i, c := range cases {
		if got := c.r.WantsKeepAlive(); got != c.want {
			t.Errorf("case %d: keep-alive = %v, want %v", i, got, c.want)
		}
	}
}

func TestDefaultReasons(t *testing.T) {
	for status, frag := range map[int]string{200: "OK", 404: "Not Found", 499: "Client Closed", 777: "Status"} {
		wire := (&Response{Status: status}).Append(nil)
		if !bytes.Contains(wire, []byte(frag)) {
			t.Errorf("status %d: %q missing %q", status, wire, frag)
		}
	}
}

// Property: serialize→parse is the identity on well-formed requests.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(pathSeed uint16, body []byte) bool {
		req := &Request{
			Method:  "PUT",
			Target:  "/x" + strings.Repeat("a", int(pathSeed%50)),
			Headers: []Header{{Name: "Host", Value: "h"}},
			Body:    body,
		}
		wire := req.Append(nil)
		back, n, err := ParseRequest(wire)
		if err != nil || n != len(wire) {
			return false
		}
		return back.Target == req.Target && bytes.Equal(back.Body, req.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseRequest(b *testing.B) {
	raw := (&Request{
		Method:  "GET",
		Target:  "/api/v1/items",
		Headers: []Header{{Name: "Host", Value: "svc"}, {Name: "Accept", Value: "*/*"}},
	}).Append(nil)
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		if _, _, err := ParseRequest(raw); err != nil {
			b.Fatal(err)
		}
	}
}
