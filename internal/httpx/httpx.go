// Package httpx is a small HTTP/1.1 request/response codec built for the L7
// LB data path: incremental parsing from a byte buffer (so a proxy can feed
// it partial reads), ordered headers, case-insensitive lookup, and
// zero-dependency serialization. The paper's LB parses HTTP to route on
// application-layer attributes (§2.1); this package is that substrate.
package httpx

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Parse errors.
var (
	// ErrIncomplete reports that more bytes are needed to finish parsing.
	ErrIncomplete = errors.New("httpx: need more data")
	// ErrMalformed reports an unrecoverable syntax error.
	ErrMalformed = errors.New("httpx: malformed message")
)

// MaxHeaderBytes bounds the header section (DoS guard).
const MaxHeaderBytes = 64 << 10

// Header is one name/value pair. Order is preserved.
type Header struct {
	Name  string
	Value string
}

// Request is a parsed HTTP/1.1 request.
type Request struct {
	Method  string
	Target  string
	Proto   string
	Headers []Header
	Body    []byte
}

// Response is a parsed or constructed HTTP/1.1 response.
type Response struct {
	Status  int
	Reason  string
	Proto   string
	Headers []Header
	Body    []byte
}

// Get returns the first header with the given name, case-insensitively.
func (r *Request) Get(name string) (string, bool) { return getHeader(r.Headers, name) }

// Get returns the first header with the given name, case-insensitively.
func (r *Response) Get(name string) (string, bool) { return getHeader(r.Headers, name) }

func getHeader(hs []Header, name string) (string, bool) {
	for _, h := range hs {
		if strings.EqualFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}

// Host returns the Host header ("" if absent).
func (r *Request) Host() string {
	v, _ := r.Get("Host")
	return v
}

// Path returns the request target up to any query string.
func (r *Request) Path() string {
	if i := strings.IndexByte(r.Target, '?'); i >= 0 {
		return r.Target[:i]
	}
	return r.Target
}

// WantsKeepAlive reports whether the connection should persist after this
// request (HTTP/1.1 defaults to keep-alive).
func (r *Request) WantsKeepAlive() bool {
	v, ok := r.Get("Connection")
	if !ok {
		return r.Proto != "HTTP/1.0"
	}
	return !strings.EqualFold(v, "close")
}

// ParseRequest parses one complete request from the front of data, returning
// the request and the number of bytes consumed. It returns ErrIncomplete
// when data holds only a prefix.
func ParseRequest(data []byte) (*Request, int, error) {
	headerEnd, err := findHeaderEnd(data)
	if err != nil {
		return nil, 0, err
	}
	lines := bytes.Split(data[:headerEnd], []byte("\r\n"))
	if len(lines) == 0 {
		return nil, 0, ErrMalformed
	}
	parts := strings.SplitN(string(lines[0]), " ", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, 0, fmt.Errorf("%w: bad request line %q", ErrMalformed, lines[0])
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2]}
	var err2 error
	req.Headers, err2 = parseHeaders(lines[1:])
	if err2 != nil {
		return nil, 0, err2
	}
	body, consumed, err := parseBody(data, headerEnd, req.Headers)
	if err != nil {
		return nil, 0, err
	}
	req.Body = body
	return req, consumed, nil
}

// ParseResponse parses one complete response from the front of data.
func ParseResponse(data []byte) (*Response, int, error) {
	headerEnd, err := findHeaderEnd(data)
	if err != nil {
		return nil, 0, err
	}
	lines := bytes.Split(data[:headerEnd], []byte("\r\n"))
	parts := strings.SplitN(string(lines[0]), " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, 0, fmt.Errorf("%w: bad status line %q", ErrMalformed, lines[0])
	}
	status, errAtoi := strconv.Atoi(parts[1])
	if errAtoi != nil || status < 100 || status > 999 {
		return nil, 0, fmt.Errorf("%w: bad status %q", ErrMalformed, parts[1])
	}
	resp := &Response{Status: status, Proto: parts[0]}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	var err2 error
	resp.Headers, err2 = parseHeaders(lines[1:])
	if err2 != nil {
		return nil, 0, err2
	}
	body, consumed, err := parseBody(data, headerEnd, resp.Headers)
	if err != nil {
		return nil, 0, err
	}
	resp.Body = body
	return resp, consumed, nil
}

// findHeaderEnd locates the start of the body (index just past CRLFCRLF).
func findHeaderEnd(data []byte) (int, error) {
	i := bytes.Index(data, []byte("\r\n\r\n"))
	if i < 0 {
		if len(data) > MaxHeaderBytes {
			return 0, fmt.Errorf("%w: header section exceeds %d bytes", ErrMalformed, MaxHeaderBytes)
		}
		return 0, ErrIncomplete
	}
	if i > MaxHeaderBytes {
		return 0, fmt.Errorf("%w: header section exceeds %d bytes", ErrMalformed, MaxHeaderBytes)
	}
	return i, nil
}

func parseHeaders(lines [][]byte) ([]Header, error) {
	var hs []Header
	for _, ln := range lines {
		if len(ln) == 0 {
			continue
		}
		i := bytes.IndexByte(ln, ':')
		if i <= 0 {
			return nil, fmt.Errorf("%w: bad header line %q", ErrMalformed, ln)
		}
		name := string(ln[:i])
		if strings.ContainsAny(name, " \t") {
			return nil, fmt.Errorf("%w: space in header name %q", ErrMalformed, name)
		}
		hs = append(hs, Header{Name: name, Value: string(bytes.TrimSpace(ln[i+1:]))})
	}
	return hs, nil
}

func parseBody(data []byte, headerEnd int, hs []Header) (body []byte, consumed int, err error) {
	bodyStart := headerEnd + 4
	cl := 0
	if v, ok := getHeader(hs, "Content-Length"); ok {
		cl, err = strconv.Atoi(v)
		if err != nil || cl < 0 {
			return nil, 0, fmt.Errorf("%w: bad Content-Length %q", ErrMalformed, v)
		}
	}
	if len(data) < bodyStart+cl {
		return nil, 0, ErrIncomplete
	}
	if cl > 0 {
		body = append([]byte(nil), data[bodyStart:bodyStart+cl]...)
	}
	return body, bodyStart + cl, nil
}

// Append serializes the request onto dst and returns the extended slice. A
// Content-Length header is added if a body is present and none was set.
func (r *Request) Append(dst []byte) []byte {
	dst = append(dst, r.Method...)
	dst = append(dst, ' ')
	dst = append(dst, r.Target...)
	dst = append(dst, ' ')
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	dst = append(dst, proto...)
	dst = append(dst, "\r\n"...)
	dst = appendHeaders(dst, r.Headers, len(r.Body))
	return append(dst, r.Body...)
}

// Append serializes the response onto dst and returns the extended slice.
func (r *Response) Append(dst []byte) []byte {
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	reason := r.Reason
	if reason == "" {
		reason = defaultReason(r.Status)
	}
	dst = append(dst, proto...)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(r.Status), 10)
	dst = append(dst, ' ')
	dst = append(dst, reason...)
	dst = append(dst, "\r\n"...)
	dst = appendHeaders(dst, r.Headers, len(r.Body))
	return append(dst, r.Body...)
}

func appendHeaders(dst []byte, hs []Header, bodyLen int) []byte {
	haveCL := false
	for _, h := range hs {
		if strings.EqualFold(h.Name, "Content-Length") {
			haveCL = true
		}
		dst = append(dst, h.Name...)
		dst = append(dst, ": "...)
		dst = append(dst, h.Value...)
		dst = append(dst, "\r\n"...)
	}
	if bodyLen > 0 && !haveCL {
		dst = append(dst, "Content-Length: "...)
		dst = strconv.AppendInt(dst, int64(bodyLen), 10)
		dst = append(dst, "\r\n"...)
	}
	return append(dst, "\r\n"...)
}

func defaultReason(status int) string {
	switch status {
	case 200:
		return "OK"
	case 204:
		return "No Content"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 499:
		return "Client Closed Request"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}
