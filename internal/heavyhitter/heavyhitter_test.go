package heavyhitter

import (
	"math/rand"
	"testing"
)

func TestSketchNeverUnderestimates(t *testing.T) {
	s := NewSketch(4, 256)
	rng := rand.New(rand.NewSource(1))
	truth := map[uint32]uint32{}
	for i := 0; i < 50_000; i++ {
		k := uint32(rng.Intn(500))
		truth[k]++
		s.Add(k, 1)
	}
	for k, want := range truth {
		if got := s.Estimate(k); got < want {
			t.Fatalf("key %d underestimated: %d < %d", k, got, want)
		}
	}
	if s.Total != 50_000 {
		t.Fatalf("Total = %d", s.Total)
	}
}

func TestSketchAccurateOnSkew(t *testing.T) {
	s := NewSketch(4, 1024)
	// One elephant, many mice.
	for i := 0; i < 10_000; i++ {
		s.Add(7, 1)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		s.Add(uint32(1000+rng.Intn(5000)), 1)
	}
	est := s.Estimate(7)
	if est < 10_000 || est > 11_000 {
		t.Fatalf("elephant estimate %d, want ≈10000 (conservative update keeps error small)", est)
	}
	// Unseen key estimate is bounded by collision noise.
	if got := s.Estimate(999_999); got > 200 {
		t.Fatalf("unseen key estimate %d too high", got)
	}
}

func TestSketchReset(t *testing.T) {
	s := NewSketch(2, 64)
	s.Add(1, 5)
	s.Reset()
	if s.Estimate(1) != 0 || s.Total != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestSketchBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSketch(0, 4)
}

func TestDetectorFlagsAttackNotSkew(t *testing.T) {
	d := NewDetector(0.5, 1000)
	var detected []uint32
	d.OnDetect = func(key uint32, est uint32, total uint64) {
		detected = append(detected, key)
		if float64(est) <= 0.5*float64(total) {
			t.Fatalf("detection below threshold: %d of %d", est, total)
		}
	}
	rng := rand.New(rand.NewSource(3))
	// Normal skewed phase: top tenant ~40% — below the attack threshold.
	for i := 0; i < 5000; i++ {
		switch {
		case rng.Float64() < 0.4:
			d.Observe(1)
		default:
			d.Observe(uint32(2 + rng.Intn(50)))
		}
	}
	if len(detected) != 0 {
		t.Fatalf("normal skew flagged: %v", detected)
	}

	// Attack phase: tenant 9 floods.
	d.AdvanceWindow()
	for i := 0; i < 5000; i++ {
		if rng.Float64() < 0.8 {
			d.Observe(9)
		} else {
			d.Observe(uint32(2 + rng.Intn(50)))
		}
	}
	if len(detected) != 1 || detected[0] != 9 {
		t.Fatalf("detected = %v, want [9]", detected)
	}
	if !d.Flagged(9) || d.Flagged(1) {
		t.Fatal("flag state wrong")
	}

	// Flags survive window advance; Clear removes them.
	d.AdvanceWindow()
	if !d.Flagged(9) {
		t.Fatal("flag lost on window advance")
	}
	d.Clear(9)
	if d.Flagged(9) {
		t.Fatal("clear failed")
	}
}

func TestDetectorMinTotalGate(t *testing.T) {
	d := NewDetector(0.5, 1_000_000)
	for i := 0; i < 10_000; i++ {
		d.Observe(1) // 100% share but window too small
	}
	if d.Flagged(1) {
		t.Fatal("detection before MinTotal")
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	s := NewSketch(4, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(uint32(i%1000), 1)
	}
}
