// Package heavyhitter implements the anomaly-detection substrate behind
// Appendix C's exception handling ("Hermes leverages anomaly detection
// techniques to identify malicious traffic patterns"): a count-min sketch
// with conservative update tracks per-tenant connection rates in O(1) space,
// and a windowed detector flags tenants whose rate explodes relative to the
// fleet (SYN-flood / Challenge Collapsar suspects) for sandbox migration.
package heavyhitter

import "fmt"

// Sketch is a count-min sketch over uint32 keys with conservative update
// (only the minimum counters grow), which tightens overestimation under
// skewed traffic — the regime heavy hitters live in.
type Sketch struct {
	rows  int
	width uint32
	cells []uint32
	seeds []uint32
	// Total counts all increments.
	Total uint64
}

// NewSketch creates a sketch with the given depth (rows) and width.
func NewSketch(rows, width int) *Sketch {
	if rows < 1 || width < 8 {
		panic(fmt.Sprintf("heavyhitter: bad sketch shape %dx%d", rows, width))
	}
	s := &Sketch{rows: rows, width: uint32(width), cells: make([]uint32, rows*width)}
	seed := uint32(0x9e3779b9)
	for i := 0; i < rows; i++ {
		seed = seed*2654435761 + 0x85ebca6b
		s.seeds = append(s.seeds, seed|1)
	}
	return s
}

func (s *Sketch) idx(row int, key uint32) int {
	h := key * s.seeds[row]
	h ^= h >> 15
	h *= 0x2c1b3c6d
	h ^= h >> 12
	return row*int(s.width) + int(h%s.width)
}

// Add increments key's count by n using conservative update and returns the
// new estimate.
func (s *Sketch) Add(key uint32, n uint32) uint32 {
	s.Total += uint64(n)
	est := s.Estimate(key) + n
	for r := 0; r < s.rows; r++ {
		i := s.idx(r, key)
		if s.cells[i] < est {
			s.cells[i] = est
		}
	}
	return est
}

// Estimate returns key's count estimate (never an underestimate).
func (s *Sketch) Estimate(key uint32) uint32 {
	min := uint32(1<<32 - 1)
	for r := 0; r < s.rows; r++ {
		if c := s.cells[s.idx(r, key)]; c < min {
			min = c
		}
	}
	return min
}

// Reset zeroes the sketch for the next window.
func (s *Sketch) Reset() {
	for i := range s.cells {
		s.cells[i] = 0
	}
	s.Total = 0
}

// Detector flags keys whose per-window share of total arrivals exceeds
// ShareThreshold once the window has seen at least MinTotal arrivals.
// Windows are advanced explicitly (the caller ties them to virtual or wall
// time).
type Detector struct {
	// ShareThreshold is the fraction of window traffic above which a key is
	// a heavy hitter (e.g. 0.4: the paper reports top tenants at 40 %, so
	// attack detection thresholds sit above normal skew).
	ShareThreshold float64
	// MinTotal gates detection until the window has enough samples.
	MinTotal uint64

	sketch  *Sketch
	flagged map[uint32]bool
	// OnDetect fires once per key per detector lifetime.
	OnDetect func(key uint32, estimate uint32, total uint64)
}

// NewDetector creates a detector with a 4×1024 sketch.
func NewDetector(share float64, minTotal uint64) *Detector {
	if share <= 0 || share > 1 {
		panic(fmt.Sprintf("heavyhitter: share threshold %v outside (0,1]", share))
	}
	return &Detector{
		ShareThreshold: share,
		MinTotal:       minTotal,
		sketch:         NewSketch(4, 1024),
		flagged:        make(map[uint32]bool),
	}
}

// Observe records one arrival for key and runs detection.
func (d *Detector) Observe(key uint32) {
	est := d.sketch.Add(key, 1)
	if d.sketch.Total < d.MinTotal || d.flagged[key] {
		return
	}
	if float64(est) > d.ShareThreshold*float64(d.sketch.Total) {
		d.flagged[key] = true
		if d.OnDetect != nil {
			d.OnDetect(key, est, d.sketch.Total)
		}
	}
}

// Flagged reports whether key has been detected.
func (d *Detector) Flagged(key uint32) bool { return d.flagged[key] }

// AdvanceWindow resets per-window counts (flags persist: a quarantined
// tenant stays quarantined until the operator clears it).
func (d *Detector) AdvanceWindow() { d.sketch.Reset() }

// Clear un-flags a key (operator action after sandbox analysis).
func (d *Detector) Clear(key uint32) { delete(d.flagged, key) }
