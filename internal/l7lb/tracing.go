package l7lb

// This file wires the per-connection flight recorder (docs/TRACING.md) into
// the kernel, eBPF, and core layers — the tracing twin of wireTelemetry.
// All trace handles are obtained here and in newWorker, once, at build
// time; with Config.Tracer unset every handle is nil and recording no-ops.

func wireTracing(lb *LB) {
	tr := lb.Cfg.Tracer
	if tr == nil {
		return
	}
	lb.NS.InstrumentTrace(tr.KernelTrace())
	if lb.ctl != nil {
		lb.ctl.InstrumentTrace(tr.ScheduleTrace())
		// The selection map has no clock; bind its sync instants to the
		// engine's virtual time.
		mt := tr.MapTrace(lb.Eng.Now)
		if lb.Ctl != nil {
			lb.Ctl.SelMap().InstrumentTrace(mt)
		}
		if lb.GCtl != nil {
			for gi := 0; gi < lb.GCtl.Groups(); gi++ {
				lb.GCtl.SelMap(gi).InstrumentTrace(mt)
			}
		}
	}
	// Per-worker handles are wired in newWorker (and newDispatcher, which
	// takes the track one past the executors).
}
