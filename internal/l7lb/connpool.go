package l7lb

// UpstreamPool models connection reuse toward backend servers (§7 "More
// connections established with backend servers"). Every proxied request
// needs an upstream connection; an idle pooled one is reused, otherwise a
// new handshake is paid (expensive when backends sit in on-premises IDCs
// across the Internet — TCP and TLS round trips).
//
// With PerWorker pools, spreading requests across all workers (what Hermes
// does) fragments the idle set: worker A cannot reuse a connection worker B
// opened, so handshakes multiply. The production fix is the shared pool.
type UpstreamPool struct {
	// PerWorker isolates idle connections by worker (the original design);
	// false = one shared pool (the §7 fix).
	PerWorker bool
	// MaxIdlePerBackend bounds idle connections kept per backend (per
	// worker when PerWorker).
	MaxIdlePerBackend int

	// Handshakes counts new upstream connections established.
	Handshakes uint64
	// Reuses counts requests served over a pooled connection.
	Reuses uint64

	idle map[poolKey]int
}

type poolKey struct {
	worker  int // -1 in shared mode
	backend int
}

// NewUpstreamPool creates a pool. maxIdle ≤ 0 defaults to 4.
func NewUpstreamPool(perWorker bool, maxIdle int) *UpstreamPool {
	if maxIdle <= 0 {
		maxIdle = 4
	}
	return &UpstreamPool{
		PerWorker:         perWorker,
		MaxIdlePerBackend: maxIdle,
		idle:              make(map[poolKey]int),
	}
}

func (p *UpstreamPool) key(worker, backend int) poolKey {
	if !p.PerWorker {
		worker = -1
	}
	return poolKey{worker: worker, backend: backend}
}

// Acquire takes an upstream connection for worker→backend, reporting
// whether it was reused (false = a fresh handshake was paid).
func (p *UpstreamPool) Acquire(worker, backend int) (reused bool) {
	k := p.key(worker, backend)
	if p.idle[k] > 0 {
		p.idle[k]--
		p.Reuses++
		return true
	}
	p.Handshakes++
	return false
}

// Release returns the connection to the idle set (dropped if the idle cap
// is reached, as real pools do).
func (p *UpstreamPool) Release(worker, backend int) {
	k := p.key(worker, backend)
	if p.idle[k] < p.MaxIdlePerBackend {
		p.idle[k]++
	}
}

// IdleTotal returns the pooled idle connection count (diagnostics).
func (p *UpstreamPool) IdleTotal() int {
	t := 0
	for _, n := range p.idle {
		t += n
	}
	return t
}

// HandshakeRate returns handshakes per request.
func (p *UpstreamPool) HandshakeRate() float64 {
	total := p.Handshakes + p.Reuses
	if total == 0 {
		return 0
	}
	return float64(p.Handshakes) / float64(total)
}
