package l7lb

import "math/rand"

// Backend is one tenant backend server behind the LB.
type Backend struct {
	// ID identifies the server within its pool.
	ID int
	// Requests counts forwarded requests.
	Requests uint64
}

// BackendPool models a tenant's backend server list, shared by all workers.
// The controller may replace the list at runtime (scale out/in), which is
// what triggered the synchronized round-robin restart incident of §7
// ("Sudden load imbalance on tenants' backend servers").
type BackendPool struct {
	servers []*Backend
	clients []*BackendClient
	// RandomizeOffsets enables the production fix: after a list update,
	// each worker restarts round-robin from a random offset instead of
	// index 0.
	RandomizeOffsets bool
}

// NewBackendPool creates a pool with n servers.
func NewBackendPool(n int) *BackendPool {
	p := &BackendPool{}
	p.resetServers(n)
	return p
}

func (p *BackendPool) resetServers(n int) {
	p.servers = make([]*Backend, n)
	for i := range p.servers {
		p.servers[i] = &Backend{ID: i}
	}
}

// Servers returns the current server list.
func (p *BackendPool) Servers() []*Backend { return p.servers }

// NewClient returns a per-worker round-robin cursor.
func (p *BackendPool) NewClient() *BackendClient {
	c := &BackendClient{pool: p}
	p.clients = append(p.clients, c)
	return c
}

// UpdateServers replaces the server list with n fresh servers and resets
// every worker's round-robin cursor — to zero (the §7 bug: all workers
// restart in lockstep, overloading the first servers) or to a random offset
// when RandomizeOffsets is set (the fix).
func (p *BackendPool) UpdateServers(n int, rng *rand.Rand) {
	p.resetServers(n)
	for _, c := range p.clients {
		if p.RandomizeOffsets {
			c.next = rng.Intn(n)
		} else {
			c.next = 0
		}
	}
}

// BackendClient is one worker's round-robin cursor over the pool.
type BackendClient struct {
	pool *BackendPool
	next int
}

// Pick forwards one request: returns the next backend in round-robin order.
func (c *BackendClient) Pick() *Backend {
	s := c.pool.servers
	b := s[c.next%len(s)]
	c.next++
	b.Requests++
	return b
}
