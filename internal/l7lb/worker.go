package l7lb

import (
	"time"

	"hermes/internal/kernel"
	"hermes/internal/sim"
	"hermes/internal/stats"
	"hermes/internal/telemetry"
	"hermes/internal/tracing"
)

// Worker is one LB worker process pinned to one CPU core, running the
// run-to-completion epoll event loop of Fig. A1 (baselines) or Fig. 9
// (Hermes). CPU occupancy is modelled in virtual time: handling an event
// charges its cost to the worker's core and defers the next step until the
// cost has elapsed, so an expensive request really does block everything
// behind it — the mechanism behind worker hangs (§5.2.1).
type Worker struct {
	// ID is the worker index (== CPU core == reuseport socket index).
	ID int

	lb      *LB
	ep      *kernel.Epoll
	hook    Hook
	backend *BackendClient // round-robin cursor when Config.Backends is set

	crashed  bool
	executor bool // ModeDispatcher executors run job queues, not epoll loops

	// gen is bumped by Crash and Restart so callbacks scheduled against a
	// previous incarnation of the worker (event completions, hang releases)
	// become no-ops instead of resurrecting state.
	gen uint64
	// hangUntilNS, while in the future, models a busy-spinning hang: the
	// worker burns CPU without making progress (Appendix C case 1). The
	// spinStartNS/spinEndNS bracket feeds the spin into BusyNS.
	hangUntilNS int64
	spinStartNS int64
	spinEndNS   int64
	// costMult scales every handled event's CPU cost (slow-worker fault).
	costMult float64

	// conns is the worker's connection table. Each owned socket carries an
	// owner stamp (worker ID, slot index) instead of a side map, so adds
	// and swap-removes are O(1) with no hashing or per-conn map growth.
	conns []*kernel.Socket

	listenSocks []*kernel.Socket // accept-mutex: sockets registered while holding

	waitStart    int64
	batchStart   int64
	prevSpurious uint64

	// onWakeFn is the pre-bound onWake method value: binding it per Wait
	// call would allocate on every loop iteration.
	onWakeFn func([]kernel.Event)

	// Batched dispatch state. The in-flight event burst, its cursor, and
	// the pending serve completion live on the worker, and the loop's
	// continuations are the pre-bound fns below — so steady-state dispatch
	// schedules no closures at all. Exactly one continuation timer is
	// outstanding at a time (the per-event cost charge or the loop tail);
	// Crash cancels it so a restarted incarnation can never be driven by a
	// stale timer, and contGen backstops the gate-deferred paths.
	batchEvs  []kernel.Event
	batchIdx  int
	contGen   uint64
	contTimer sim.Timer
	serv      servState

	onWakeGateFn func()
	afterEventFn func()
	endLoopFn    func()

	// ConnTableGrows counts conns-slice regrowths after construction; the
	// scale harness pins it at zero when a capacity hint is configured.
	ConnTableGrows uint64

	// Executor state (ModeDispatcher).
	jobs         []execJob
	jobRunning   bool
	queuedCostNS int64

	// busyDoneNS is CPU time of finished work; jobStartNS/jobEndNS bracket
	// the in-flight piece so BusyNS never over-reports a long job that
	// extends past the observation instant.
	busyDoneNS int64
	jobStartNS int64
	jobEndNS   int64
	// Completed counts requests finished on this worker.
	Completed uint64
	// Accepted counts connections accepted.
	Accepted uint64
	// ResetConns counts connections reset by pool exhaustion or shedding.
	ResetConns uint64
	// Restarts counts recoveries from a crash.
	Restarts uint64

	// Detailed per-worker distributions (enabled by Config.DetailedStats).
	EventsPerWait *stats.Sample // Fig. 4
	BatchProcNS   *stats.Sample // Fig. 5a
	BlockNS       *stats.Sample // Fig. 5b

	// Telemetry slot handles (nil = disabled, see Config.Telemetry).
	telServed   *telemetry.Counter
	telAccepted *telemetry.Counter
	telOpen     *telemetry.Timeline
	// tr is this worker's flight-recorder track (nil = disabled, see
	// Config.Tracer).
	tr *tracing.WorkerTrace
}

type execJob struct {
	cost time.Duration
	done func()
}

// servState carries an EvReadable serve from handle to its completion in
// afterEvent — the fields the old per-event completion closure captured.
// Only one serve is in flight per worker (run-to-completion), so a single
// embedded struct replaces a closure allocation per request.
type servState struct {
	active     bool
	sock       *kernel.Socket
	connRef    kernel.ConnRef
	work       Work
	serveStart int64
	backendID  int
	forwarded  bool
}

func newWorker(lb *LB, id int, hook Hook) *Worker {
	// Pre-size the connection table so the steady-state accept path does
	// not rehash/regrow: from the cell's planned per-worker connection
	// count when the driver provides one, bounded by the pool cap.
	hint := 256
	if h := lb.Cfg.ConnsPerWorkerHint; h > hint {
		hint = h
	}
	if max := lb.Cfg.MaxConnsPerWorker; max > 0 && max < hint {
		hint = max
	}
	w := &Worker{
		ID:       id,
		lb:       lb,
		ep:       lb.NS.NewEpoll(),
		hook:     hook,
		costMult: 1,
		conns:    make([]*kernel.Socket, 0, hint),
	}
	w.onWakeFn = w.onWake
	w.onWakeGateFn = func() { w.onWake(w.batchEvs) }
	w.afterEventFn = w.afterEvent
	w.endLoopFn = w.endLoopCont
	if lb.Cfg.DetailedStats {
		w.EventsPerWait = &stats.Sample{}
		w.BatchProcNS = &stats.Sample{}
		w.BlockNS = &stats.Sample{}
	}
	// Slot this worker's telemetry handles (nil no-ops when disabled).
	w.telServed = lb.tel.served.At(id)
	w.telAccepted = lb.tel.accepted.At(id)
	w.telOpen = lb.tel.openConns.At(id)
	if id >= 0 {
		// The dispatcher core (id -1) gets its own track in newDispatcher.
		w.tr = lb.Cfg.Tracer.WorkerTrace(id)
	}
	w.instrumentEpoll()
	return w
}

// instrumentEpoll wires the current epoll instance to this worker's
// telemetry slots and trace track. Re-run after Restart builds a fresh
// instance, so a restarted worker keeps reporting into the same slots.
func (w *Worker) instrumentEpoll() {
	w.ep.Instrument(kernel.EpollInstruments{
		Wakeups:   w.lb.tel.epWakeups.At(w.ID),
		Spurious:  w.lb.tel.epSpurious.At(w.ID),
		Timeouts:  w.lb.tel.epTimeouts.At(w.ID),
		Events:    w.lb.tel.epEvents.At(w.ID),
		Residency: w.lb.tel.epWaitNS,
	})
	if w.ID >= 0 {
		w.ep.InstrumentTrace(w.tr)
	}
}

// Epoll exposes the worker's epoll instance (wiring and tests).
func (w *Worker) Epoll() *kernel.Epoll { return w.ep }

// OpenConns returns the number of live connections owned by this worker.
func (w *Worker) OpenConns() int { return len(w.conns) }

// ConnTableCap returns the connection table's current capacity (pre-sizing
// and regrowth checks).
func (w *Worker) ConnTableCap() int { return cap(w.conns) }

// SampleConn returns one of the worker's live connection sockets (nil if it
// has none) — used by the prober to reach every worker through real
// connections.
func (w *Worker) SampleConn() *kernel.Socket {
	if len(w.conns) == 0 {
		return nil
	}
	return w.conns[0]
}

// OwnsConn reports whether this worker holds the given connection socket.
func (w *Worker) OwnsConn(s *kernel.Socket) bool {
	tag, _, ok := s.Owner()
	return ok && tag == int32(w.ID)
}

// Crashed reports whether the worker has crashed.
func (w *Worker) Crashed() bool { return w.crashed }

// Crash kills the worker (§7 "How worker failures impact tenant services").
// With dropConns, its established connections are reset, notifying the
// workload's reset callback so clients can reconnect. As when a real
// process dies, the kernel closes its epoll fd: the outstanding waiter is
// cancelled and every watch (including listen sockets) leaves its socket's
// wait queue, so exclusive wakeup walks can no longer select — and lose —
// a wakeup on the dead worker. The reuseport listen socket, owned by the
// group rather than the process in this model, stays open until Restart,
// so steered connections queue behind the dead worker meanwhile.
func (w *Worker) Crash(dropConns bool) {
	if w.crashed {
		return
	}
	w.crashed = true
	w.gen++
	now := w.lb.Eng.Now()
	// Bank the elapsed fraction of in-flight work and spin: the CPU was
	// really spent even though the completion callback will never run.
	if w.jobEndNS > w.jobStartNS {
		end := now
		if w.jobEndNS < end {
			end = w.jobEndNS
		}
		if end > w.jobStartNS {
			w.busyDoneNS += end - w.jobStartNS
		}
		w.jobStartNS, w.jobEndNS = 0, 0
	}
	w.bankSpin(now)
	w.hangUntilNS = 0
	// The dead process takes its loop continuation with it: cancel the one
	// outstanding timer and drop any parked serve so a restarted incarnation
	// cannot be driven by — or complete — its predecessor's work.
	w.contTimer.Cancel()
	w.serv = servState{}
	w.ep.Close()
	if m := w.lb.mutex; m != nil && m.holder == w {
		w.releaseMutex()
	}
	if dropConns {
		for len(w.conns) > 0 {
			w.resetConn(w.conns[len(w.conns)-1])
		}
	}
}

// Restart brings a crashed worker back: a fresh process with a fresh epoll
// instance, re-registered on the mode's listen sockets (including its
// reuseport slot), with any connections stranded by a Crash(false) reset —
// the dead process's fds are unrecoverable. Telemetry and tracing keep
// flowing into the worker's existing slots.
func (w *Worker) Restart() {
	if !w.crashed {
		return
	}
	for len(w.conns) > 0 {
		w.resetConn(w.conns[len(w.conns)-1])
	}
	w.crashed = false
	w.gen++
	w.Restarts++
	w.hangUntilNS, w.spinStartNS, w.spinEndNS = 0, 0, 0
	w.jobStartNS, w.jobEndNS = 0, 0
	w.costMult = 1
	w.jobs = w.jobs[:0]
	w.jobRunning = false
	w.queuedCostNS = 0
	w.ep = w.lb.NS.NewEpoll()
	w.instrumentEpoll()
	w.lb.registerWorkerSockets(w)
	w.Start()
}

// Hang busy-spins the worker for d: it stops fetching and handling events
// (its loop-enter timestamp goes stale — the paper's FilterTime signal)
// while still burning its core, then resumes where it left off. Overlapping
// hangs extend the spin rather than stacking.
func (w *Worker) Hang(d time.Duration) {
	if w.crashed || d <= 0 {
		return
	}
	now := w.lb.Eng.Now()
	until := now + int64(d)
	if until <= w.hangUntilNS {
		return
	}
	if w.spinEndNS > now {
		w.spinEndNS = until
	} else {
		w.bankSpin(now)
		start := now
		if w.jobEndNS > start {
			// An in-flight event charge finishes first; the spin takes over
			// from there so BusyNS never double-counts the core.
			start = w.jobEndNS
		}
		w.spinStartNS, w.spinEndNS = start, until
		if w.spinEndNS < w.spinStartNS {
			w.spinEndNS = w.spinStartNS
		}
	}
	w.hangUntilNS = until
}

// Hung reports whether the worker is currently inside an injected hang.
func (w *Worker) Hung() bool { return w.hangUntilNS > w.lb.Eng.Now() }

// bankSpin folds a finished spin bracket into busyDoneNS.
func (w *Worker) bankSpin(now int64) {
	if w.spinEndNS > w.spinStartNS {
		end := now
		if w.spinEndNS < end {
			end = w.spinEndNS
		}
		if end > w.spinStartNS {
			w.busyDoneNS += end - w.spinStartNS
		}
	}
	w.spinStartNS, w.spinEndNS = 0, 0
}

// SetCostMultiplier scales the CPU cost of every event this worker handles
// (slow-worker fault; 1 restores normal speed).
func (w *Worker) SetCostMultiplier(m float64) {
	if m <= 0 {
		m = 1
	}
	w.costMult = m
}

// CostMultiplier returns the current slow-worker scale factor.
func (w *Worker) CostMultiplier() float64 { return w.costMult }

func (w *Worker) scaleCost(d time.Duration) time.Duration {
	if w.costMult != 1 && d > 0 {
		return time.Duration(float64(d) * w.costMult)
	}
	return d
}

// gate defers fn until the current hang releases. It returns true when the
// worker is hung (fn will run at hangUntilNS, unless the worker crashes or
// the hang is extended, in which case fn re-gates).
func (w *Worker) gate(fn func()) bool {
	if w.hangUntilNS <= w.lb.Eng.Now() {
		return false
	}
	gen := w.gen
	w.lb.Eng.At(w.hangUntilNS, func() {
		if w.crashed || w.gen != gen {
			return
		}
		if w.gate(fn) {
			return // hang was extended; the spin bracket is still live
		}
		w.bankSpin(w.lb.Eng.Now())
		fn()
	})
	return true
}

// busy charges completed (instantaneous) CPU work.
func (w *Worker) busy(d time.Duration) {
	if d > 0 {
		w.busyDoneNS += int64(d)
	}
}

// beginWork marks the start of a deferred piece of work of duration d; the
// matching endWork (from the completion callback) banks it. Observations in
// between see only the elapsed fraction.
func (w *Worker) beginWork(d time.Duration) {
	if d <= 0 {
		return
	}
	now := w.lb.Eng.Now()
	w.jobStartNS, w.jobEndNS = now, now+int64(d)
}

func (w *Worker) endWork() {
	if w.jobEndNS > w.jobStartNS {
		w.busyDoneNS += w.jobEndNS - w.jobStartNS
	}
	w.jobStartNS, w.jobEndNS = 0, 0
}

// BusyNS returns accumulated virtual CPU time as of nowNS, including the
// elapsed parts of any in-flight job and any injected busy-spin.
func (w *Worker) BusyNS(nowNS int64) int64 {
	b := w.busyDoneNS
	if w.jobEndNS > w.jobStartNS {
		end := nowNS
		if w.jobEndNS < end {
			end = w.jobEndNS
		}
		if end > w.jobStartNS {
			b += end - w.jobStartNS
		}
	}
	if w.spinEndNS > w.spinStartNS {
		end := nowNS
		if w.spinEndNS < end {
			end = w.spinEndNS
		}
		if end > w.spinStartNS {
			b += end - w.spinStartNS
		}
	}
	return b
}

// Start schedules the first event-loop iteration.
func (w *Worker) Start() {
	if w.executor {
		return // executors are driven by the dispatcher
	}
	w.loopEnter()
}

func (w *Worker) loopEnter() {
	if w.crashed || w.gate(w.loopEnter) {
		return
	}
	now := w.lb.Eng.Now()
	w.hook.LoopEnter(now)
	w.telOpen.Record(now, int64(len(w.conns)))
	if w.lb.Cfg.ScheduleAtLoopStart {
		if w.hook.ScheduleAndSync(now) {
			w.busy(w.lb.Cfg.Costs.Schedule)
		}
	}
	if w.lb.mutex != nil {
		w.tryAcquireMutex()
	}
	w.waitStart = now
	w.prevSpurious = w.ep.SpuriousWakeups
	w.ep.Wait(w.lb.Cfg.Hermes.MaxEvents, w.lb.Cfg.Hermes.EpollTimeout, w.onWakeFn)
}

func (w *Worker) onWake(evs []kernel.Event) {
	// A hung worker has fetched the batch but spins before touching it: the
	// events (and any queued connections behind them) stall until release.
	// The batch is parked on the worker so the gate continuation needs no
	// per-wake closure; the buffer is the epoll's scratch, stable until this
	// worker's next Wait.
	w.batchEvs = evs
	if w.crashed || w.gate(w.onWakeGateFn) {
		return
	}
	now := w.lb.Eng.Now()
	if w.BlockNS != nil {
		w.BlockNS.Add(float64(now - w.waitStart))
	}
	if w.EventsPerWait != nil {
		w.EventsPerWait.Add(float64(len(evs)))
	}
	w.hook.EventsFetched(len(evs))
	w.batchStart = now
	if len(evs) == 0 && w.ep.SpuriousWakeups > w.prevSpurious {
		// Thundering-herd loser: charge the wasted wakeup.
		w.busy(w.lb.Cfg.Costs.SpuriousWake)
	}
	w.batchIdx = 0
	w.processBatch()
}

func (w *Worker) processBatch() {
	if w.crashed {
		return
	}
	if w.batchIdx >= len(w.batchEvs) {
		w.endLoop()
		return
	}
	cost := w.handle(w.batchEvs[w.batchIdx])
	cost = w.scaleCost(cost)
	w.beginWork(cost)
	w.contGen = w.gen
	w.contTimer = w.lb.Eng.After(cost, w.afterEventFn)
}

// afterEvent finishes the event at the batch cursor once its CPU charge has
// elapsed (and any injected hang has released), then continues the batch.
func (w *Worker) afterEvent() {
	if w.crashed || w.gen != w.contGen {
		return
	}
	if w.gate(w.afterEventFn) {
		return
	}
	w.endWork()
	w.hook.EventHandled()
	if w.serv.active {
		w.finishServe()
	}
	ev := w.batchEvs[w.batchIdx]
	if w.lb.Cfg.EdgeTriggered && ev.Kind == kernel.EvReadable &&
		!ev.Sock.Closed() && ev.Sock.PendingData() > 0 {
		if p := w.lb.Cfg.Shed; p.Enabled && p.PendingThreshold > 0 &&
			ev.Sock.PendingData() > p.PendingThreshold {
			// Proactive degradation (Appendix C): RST the runaway
			// connection instead of staying trapped in its drain.
			w.ResetConns++
			w.lb.ConnsReset++
			w.resetConn(ev.Sock)
			w.busy(w.lb.Cfg.Costs.Close)
			w.batchIdx++
			w.processBatch()
			return
		}
		// Edge-triggered drain obligation: keep consuming this socket
		// before touching the rest of the loop — the trap of Appendix C
		// when data arrives faster than it is processed.
		w.hook.EventsFetched(1)
		w.processBatch()
		return
	}
	w.batchIdx++
	w.processBatch()
}

// finishServe completes the in-flight EvReadable serve parked by handle:
// upstream release, completion accounting, and Connection: close teardown.
func (w *Worker) finishServe() {
	s := w.serv
	w.serv = servState{}
	if s.forwarded && w.lb.Cfg.Upstream != nil {
		w.lb.Cfg.Upstream.Release(w.ID, s.backendID)
	}
	w.Completed++
	w.telServed.Inc()
	w.tr.Serve(uint64(s.connRef.ID()), s.work.ArrivalNS, s.serveStart, w.lb.Eng.Now(), s.work.Probe)
	w.lb.recordCompletion(w, s.connRef, s.work)
	if s.work.Close && s.connRef.Get() != nil {
		w.closeConn(s.sock)
	}
}

// handle applies an event's immediate effects and returns its CPU cost. An
// EvReadable serve parks its completion state in w.serv; afterEvent runs
// finishServe when the cost has elapsed.
func (w *Worker) handle(ev kernel.Event) time.Duration {
	costs := w.lb.Cfg.Costs
	switch ev.Kind {
	case kernel.EvAccept:
		conn, ok := ev.Sock.Accept()
		if !ok {
			// Raced by another worker (herd / shared-socket modes).
			return costs.SpuriousWake
		}
		w.Accepted++
		w.telAccepted.Inc()
		w.lb.tel.acceptWait.Observe(conn.AcceptedNS - conn.EstablishedNS)
		w.tr.Accept(uint64(conn.ID), conn.EstablishedNS, conn.AcceptedNS)
		if max := w.lb.Cfg.MaxConnsPerWorker; max > 0 && len(w.conns) >= max {
			// Connection pool exhausted: reset (§5.1.1).
			w.ResetConns++
			w.lb.ConnsReset++
			sock := conn.Sock()
			ref := conn.Ref()
			w.lb.NS.CloseSocket(sock)
			w.tr.Close(uint64(ref.ID()), w.lb.Eng.Now(), true)
			w.lb.notifyReset(ref)
			return costs.Close
		}
		w.addConn(conn.Sock())
		w.hook.ConnOpened()
		// Accept cost includes the dispatch overhead: O(#registered ports)
		// for shared-socket modes, O(#owned ports) for reuseport/Hermes
		// (§6.2 Case 1).
		return costs.Accept + w.lb.acceptExtra
	case kernel.EvReadable:
		payload, ok := ev.Sock.PopData()
		if !ok {
			return costs.SpuriousWake
		}
		work := payload.(Work)
		sock := ev.Sock
		// The completion fires after the cost elapses; by then the
		// connection may have been reset (crash, shed) and its socket
		// recycled into a different connection, so capture a checked ref
		// now rather than re-reading sock.Conn() later.
		connRef := sock.Conn().Ref()
		serveStart := w.lb.Eng.Now()
		cost := work.Cost
		var backendID int
		forwarded := false
		if w.backend != nil {
			// Forward to a backend (§7): a pool miss pays the cross-network
			// handshake before the request can proceed.
			b := w.backend.Pick()
			backendID = b.ID
			forwarded = true
			if w.lb.Cfg.Upstream != nil && !w.lb.Cfg.Upstream.Acquire(w.ID, b.ID) {
				cost += costs.UpstreamHandshake
			}
		}
		w.serv = servState{
			active:     true,
			sock:       sock,
			connRef:    connRef,
			work:       work,
			serveStart: serveStart,
			backendID:  backendID,
			forwarded:  forwarded,
		}
		return cost
	case kernel.EvHangup:
		w.closeConn(ev.Sock)
		return costs.Close
	default:
		return 0
	}
}

func (w *Worker) endLoop() {
	now := w.lb.Eng.Now()
	if w.BatchProcNS != nil && now > w.batchStart {
		w.BatchProcNS.Add(float64(now - w.batchStart))
	}

	var tail time.Duration
	if !w.lb.Cfg.ScheduleAtLoopStart && w.hook.ScheduleAndSync(now) {
		tail += w.lb.Cfg.Costs.Schedule
	}
	if p := w.lb.Cfg.Shed; p.Enabled {
		for len(w.conns) > p.ConnThreshold {
			w.ResetConns++
			w.lb.ConnsReset++
			w.resetConn(w.conns[len(w.conns)-1])
			tail += w.lb.Cfg.Costs.Close
		}
	}
	if w.lb.mutex != nil && w.lb.mutex.holder == w {
		w.releaseMutex()
		tail += w.lb.Cfg.Costs.MutexOp
	}
	w.beginWork(tail)
	w.contGen = w.gen
	w.contTimer = w.lb.Eng.After(tail, w.endLoopFn)
}

// endLoopCont is the loop tail's pre-bound continuation: bank the tail cost
// and re-enter the loop.
func (w *Worker) endLoopCont() {
	if w.crashed || w.gen != w.contGen {
		return
	}
	w.endWork()
	w.loopEnter()
}

func (w *Worker) addConn(s *kernel.Socket) {
	if w.lb.Cfg.EdgeTriggered {
		w.ep.AddET(s)
	} else {
		w.ep.Add(s)
	}
	s.SetOwner(int32(w.ID), int32(len(w.conns)))
	if len(w.conns) == cap(w.conns) {
		w.ConnTableGrows++
	}
	w.conns = append(w.conns, s)
}

func (w *Worker) removeConn(s *kernel.Socket) {
	tag, pos, ok := s.Owner()
	if !ok || tag != int32(w.ID) {
		return
	}
	i, last := int(pos), len(w.conns)-1
	w.conns[i] = w.conns[last]
	w.conns[i].SetOwner(int32(w.ID), int32(i))
	w.conns[last] = nil
	w.conns = w.conns[:last]
	s.ClearOwner()
}

// closeConn tears down a connection in response to protocol events
// (hangup or Connection: close).
func (w *Worker) closeConn(s *kernel.Socket) {
	if s.Closed() {
		return
	}
	w.removeConn(s)
	w.hook.ConnClosed()
	w.lb.NS.CloseSocket(s)
	if c := s.Conn(); c != nil {
		w.tr.Close(uint64(c.ID), w.lb.Eng.Now(), false)
	}
}

// resetConn force-closes a connection (RST): pool exhaustion, shedding, or
// crash. The workload's reset callback fires so clients can reconnect.
func (w *Worker) resetConn(s *kernel.Socket) {
	if s.Closed() {
		return
	}
	// Capture the ref before CloseSocket recycles the pair: the ID is
	// intact until a later handshake reuses the object, which cannot
	// happen within this event.
	var ref kernel.ConnRef
	if c := s.Conn(); c != nil {
		ref = c.Ref()
	}
	w.removeConn(s)
	w.hook.ConnClosed()
	w.lb.NS.CloseSocket(s)
	if ref.Get() != nil {
		w.tr.Close(uint64(ref.ID()), w.lb.Eng.Now(), true)
	}
	w.lb.notifyReset(ref)
}

// --- accept-mutex mode ---

type acceptMutex struct {
	holder *Worker
	next   int // rotation cursor for handoff kicks
}

func (w *Worker) tryAcquireMutex() {
	m := w.lb.mutex
	if m.holder != nil {
		return
	}
	m.holder = w
	w.busy(w.lb.Cfg.Costs.MutexOp)
	for _, ls := range w.listenSocks {
		w.ep.Add(ls)
	}
}

func (w *Worker) releaseMutex() {
	for _, ls := range w.listenSocks {
		w.ep.Del(ls)
	}
	m := w.lb.mutex
	m.holder = nil
	// Hand off: kick one sleeping worker so the mutex is contended again
	// immediately rather than after somebody's epoll timeout (nginx
	// workers retry on their own wakeups / accept_mutex_delay).
	ws := w.lb.Workers
	for i := 0; i < len(ws); i++ {
		cand := ws[(m.next+i)%len(ws)]
		if cand != w && !cand.crashed && cand.ep.Blocked() {
			m.next = (m.next + i + 1) % len(ws)
			cand.ep.Kick()
			return
		}
	}
}

// --- dispatcher-mode executor ---

func (w *Worker) pushJob(cost time.Duration, done func()) {
	w.jobs = append(w.jobs, execJob{cost: cost, done: done})
	w.queuedCostNS += int64(cost)
	if !w.jobRunning {
		w.runNextJob()
	}
}

func (w *Worker) runNextJob() {
	if w.crashed || len(w.jobs) == 0 {
		w.jobRunning = false
		return
	}
	w.jobRunning = true
	j := w.jobs[0]
	w.jobs = w.jobs[1:]
	// queuedCostNS tracks the unscaled cost pushJob added, so the slow
	// multiplier applies only to the charge, not the queue accounting.
	cost := w.scaleCost(j.cost)
	w.beginWork(cost)
	gen := w.gen
	w.lb.Eng.After(cost, func() { w.afterJob(j, gen) })
}

func (w *Worker) afterJob(j execJob, gen uint64) {
	if w.crashed || w.gen != gen {
		return
	}
	if w.gate(func() { w.afterJob(j, gen) }) {
		return
	}
	w.endWork()
	w.queuedCostNS -= int64(j.cost)
	if j.done != nil {
		j.done()
	}
	w.runNextJob()
}
