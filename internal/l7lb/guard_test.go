package l7lb

import (
	"testing"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/sim"
)

func TestTenantGuardQuarantinesOffender(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(ModeHermes)
	cfg.Workers = 4
	cfg.Ports = []uint16{8080, 8081} // 8080 benign, 8081 abusive
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	guard := NewTenantGuard(5*time.Millisecond, 3)
	var quarantined []uint16
	guard.OnQuarantine = func(tenant uint16) {
		quarantined = append(quarantined, tenant)
		lb.QuarantineTenant(tenant)
	}
	lb.Guard = guard
	lb.Start()

	send := func(i int, port uint16, cost time.Duration) {
		eng.At(int64(i)*int64(2*time.Millisecond), func() {
			c, ok := lb.NS.DeliverSYN(tupleN(uint32(i), port), nil)
			if !ok {
				return
			}
			eng.After(100*time.Microsecond, func() {
				lb.NS.DeliverData(c, Work{ArrivalNS: eng.Now(), Cost: cost, Close: true, Tenant: port})
			})
		})
	}
	for i := 0; i < 40; i++ {
		send(i, 8080, 50*time.Microsecond) // benign
		send(i, 8081, 20*time.Millisecond) // hang-inducing
	}
	eng.RunUntil(int64(2 * time.Second))

	if len(quarantined) != 1 || quarantined[0] != 8081 {
		t.Fatalf("quarantined = %v, want [8081]", quarantined)
	}
	if guard.Quarantined(8080) {
		t.Fatal("benign tenant quarantined")
	}
	if guard.HangCount(8081) < 3 {
		t.Fatalf("hang count = %d", guard.HangCount(8081))
	}
	// New SYNs to the quarantined port are refused; benign port still works.
	if _, ok := lb.NS.DeliverSYN(tupleN(999, 8081), nil); ok {
		t.Fatal("quarantined tenant still accepting connections")
	}
	if _, ok := lb.NS.DeliverSYN(tupleN(999, 8080), nil); !ok {
		t.Fatal("benign tenant broken by quarantine")
	}
	top := guard.TopOffenders(1)
	if len(top) != 1 || top[0].Tenant != 8081 {
		t.Fatalf("top offenders: %+v", top)
	}
}

func tupleN(src uint32, port uint16) kernel.FourTuple {
	return kernel.FourTuple{SrcIP: src, SrcPort: uint16(1 + src%60000), DstIP: 9, DstPort: port}
}

func TestTenantGuardDefaults(t *testing.T) {
	g := NewTenantGuard(0, 0)
	if g.HangCost != 10*time.Millisecond || g.QuarantineAfter != 10 {
		t.Fatalf("defaults: %+v", g)
	}
	// Below-threshold costs never quarantine.
	for i := 0; i < 100; i++ {
		g.Note(1, time.Millisecond)
	}
	if g.Quarantined(1) || g.HangCount(1) != 0 {
		t.Fatal("benign requests counted as hangs")
	}
	if got := g.TopOffenders(5); len(got) != 1 || got[0].Requests != 100 {
		t.Fatalf("offenders: %+v", got)
	}
}

func TestTenantGuardOrdering(t *testing.T) {
	g := NewTenantGuard(time.Millisecond, 100)
	g.Note(1, 2*time.Millisecond)
	g.Note(1, 2*time.Millisecond)
	g.Note(2, 2*time.Millisecond)
	g.Note(3, 10*time.Microsecond)
	top := g.TopOffenders(0)
	if len(top) != 3 || top[0].Tenant != 1 || top[1].Tenant != 2 || top[2].Tenant != 3 {
		t.Fatalf("ordering: %+v", top)
	}
}
