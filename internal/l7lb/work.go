package l7lb

import "time"

// Work is one application-layer request as it crosses the simulated kernel:
// the workload generator attaches it as the payload of a readable event, and
// the worker charges itself Cost of virtual CPU to process it. The classes
// mirror the paper's processing tasks (§2.1).
type Work struct {
	// ArrivalNS is the virtual time the request reached the LB (data
	// delivery); end-to-end latency is completion − arrival.
	ArrivalNS int64
	// Cost is the CPU time the worker spends on this request (routing,
	// TLS, compression, copying — request-dependent, invisible to the
	// kernel: the paper's core observation, §3).
	Cost time.Duration
	// Size is the request size in bytes (Table 1).
	Size int
	// RespSize is the response size in bytes.
	RespSize int
	// Close requests connection teardown after the response.
	Close bool
	// Probe marks the health probes of Fig. 11.
	Probe bool
	// ProbeSrc tags which prober issued a probe (RegisterProbeSink tag;
	// 0 = untagged), so concurrent probers keep exact separate accounting.
	ProbeSrc int32
	// Tenant is the tenant port this request belongs to.
	Tenant uint16
}

// Hook is the seam where Hermes instruments the event loop (Fig. 9). The
// baseline modes use NopHook; Hermes modes adapt core's worker hooks.
type Hook interface {
	LoopEnter(nowNS int64)
	EventsFetched(n int)
	EventHandled()
	ConnOpened()
	ConnClosed()
	// ScheduleAndSync runs at the end of each event loop; it returns true
	// if a scheduling pass actually executed (so the worker charges itself
	// the scheduler's CPU cost).
	ScheduleAndSync(nowNS int64) bool
}

// NopHook is the baseline (non-Hermes) hook: the unmodified event loop.
type NopHook struct{}

// LoopEnter implements Hook.
func (NopHook) LoopEnter(int64) {}

// EventsFetched implements Hook.
func (NopHook) EventsFetched(int) {}

// EventHandled implements Hook.
func (NopHook) EventHandled() {}

// ConnOpened implements Hook.
func (NopHook) ConnOpened() {}

// ConnClosed implements Hook.
func (NopHook) ConnClosed() {}

// ScheduleAndSync implements Hook.
func (NopHook) ScheduleAndSync(int64) bool { return false }
