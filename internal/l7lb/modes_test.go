package l7lb

import (
	"testing"
	"time"

	"hermes/internal/sim"
)

// io_uring's FIFO wakeup concentrates connections on the earliest-registered
// worker — the mirror image of EPOLLEXCLUSIVE's LIFO (§8).
func TestIOUringFIFOConcentratesOnFirstWorker(t *testing.T) {
	eng := sim.NewEngine(7)
	cfg := DefaultConfig(ModeIOUring)
	cfg.Workers = 8
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	for i := 0; i < 400; i++ {
		i := i
		eng.At(int64(i)*int64(200*time.Microsecond), func() {
			openConn(t, lb, uint32(i), 8080)
		})
	}
	eng.RunUntil(int64(200 * time.Millisecond))

	counts := lb.WorkerConnCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 400 {
		t.Fatalf("served %d of 400: %v", total, counts)
	}
	// FIFO walks the wait queue from the tail; epoll_ctl prepends, so the
	// tail is worker 0 (first registered).
	if counts[0] < 350 {
		t.Fatalf("FIFO should concentrate on worker 0: %v", counts)
	}
	if ModeIOUring.String() != "io-uring-fifo" {
		t.Fatal("mode string")
	}
}

// A 96-worker Hermes LB transparently uses the two-level grouped controller
// and still avoids a hung worker.
func TestGroupedHermesLBOver64Workers(t *testing.T) {
	eng := sim.NewEngine(3)
	cfg := DefaultConfig(ModeHermes)
	cfg.Workers = 96
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Ctl != nil || lb.GCtl == nil {
		t.Fatal("expected grouped controller for 96 workers")
	}
	if lb.GCtl.Groups() != 2 {
		t.Fatalf("groups = %d", lb.GCtl.Groups())
	}
	lb.Start()

	for i := 0; i < 2000; i++ {
		i := i
		eng.At(int64(i)*int64(50*time.Microsecond), func() {
			c := openConn(t, lb, uint32(i), 8080)
			eng.After(30*time.Microsecond, func() {
				sendReq(lb, c, 20*time.Microsecond, true)
			})
		})
	}
	eng.RunUntil(int64(time.Second))
	if lb.Completed != 2000 {
		t.Fatalf("completed %d of 2000", lb.Completed)
	}
	// Traffic must reach both halves of the fleet.
	lo, hi := uint64(0), uint64(0)
	for i, w := range lb.Workers {
		if i < 64 {
			lo += w.Accepted
		} else {
			hi += w.Accepted
		}
	}
	if lo == 0 || hi == 0 {
		t.Fatalf("group split %d/%d: one group starved", lo, hi)
	}
	if g := lb.Groups()[0]; g.ProgDispatched == 0 {
		t.Fatalf("grouped dispatch program unused: fallbacks=%d errors=%d",
			g.Fallbacks, g.ProgErrors)
	}
}

func TestGroupedHermesNativeOver64(t *testing.T) {
	eng := sim.NewEngine(4)
	cfg := DefaultConfig(ModeHermesNative)
	cfg.Workers = 80
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	for i := 0; i < 500; i++ {
		i := i
		eng.At(int64(i)*int64(100*time.Microsecond), func() {
			c := openConn(t, lb, uint32(i), 8080)
			eng.After(30*time.Microsecond, func() {
				sendReq(lb, c, 20*time.Microsecond, true)
			})
		})
	}
	eng.RunUntil(int64(time.Second))
	if lb.Completed != 500 {
		t.Fatalf("completed %d of 500", lb.Completed)
	}
}
