package l7lb

import (
	"testing"
	"time"

	"hermes/internal/sim"
)

// The worker-availability veto reaches the kernel dispatch: after
// SetWorkerAvailable(id, false) and a schedule pass, the eBPF program stops
// steering new connections to that worker, and restoring it brings traffic
// back — the same eviction path the real proxy's backend-health wiring and
// graceful drain use.
func TestSetWorkerAvailableEvictsFromDispatch(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(ModeHermes)
	cfg.Workers = 3
	// MinWorkers=1 keeps dispatch on the bitmap even when the busy filter
	// narrows the set to one worker; at the default of 2 the kernel would
	// hash-fallback across all sockets — including the vetoed one, by
	// design — whenever fewer than two workers pass the cascade.
	cfg.Hermes.MinWorkers = 1
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	eng.RunUntil(int64(10 * time.Millisecond)) // everyone scheduled at least once

	if err := lb.SetWorkerAvailable(1, false); err != nil {
		t.Fatal(err)
	}
	// Let the workers' loops republish the bitmap with the veto applied.
	eng.RunUntil(eng.Now() + int64(50*time.Millisecond))
	if bm, _ := lb.Ctl.SelMap().Lookup(0); bm&(1<<1) != 0 {
		t.Fatalf("published bitmap still has vetoed worker: %b", bm)
	}

	// Short served-and-closed requests keep the pool from saturating (an
	// empty selection set would hash-fallback onto the vetoed worker by
	// design — that safety valve is covered elsewhere).
	const conns = 60
	fire := func(base uint32) {
		for i := 0; i < conns; i++ {
			i := i
			eng.At(eng.Now()+int64(i)*int64(200*time.Microsecond), func() {
				c := openConn(t, lb, base+uint32(i), 8080)
				eng.After(10*time.Microsecond, func() {
					sendReq(lb, c, 20*time.Microsecond, true)
				})
			})
		}
		eng.RunUntil(eng.Now() + int64(100*time.Millisecond))
	}
	fire(1)

	if got := lb.Workers[1].Accepted; got != 0 {
		t.Fatalf("vetoed worker accepted %d connections (%d/%d/%d)",
			got, lb.Workers[0].Accepted, lb.Workers[1].Accepted, lb.Workers[2].Accepted)
	}
	if total := lb.Workers[0].Accepted + lb.Workers[2].Accepted; total != conns {
		t.Fatalf("healthy workers accepted %d conns, want %d", total, conns)
	}

	// Restore and verify traffic comes back.
	if err := lb.SetWorkerAvailable(1, true); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + int64(50*time.Millisecond))
	fire(1000)
	if lb.Workers[1].Accepted == 0 {
		t.Fatal("restored worker still getting nothing")
	}

	if err := lb.SetWorkerAvailable(99, false); err == nil {
		t.Error("out-of-range veto accepted")
	}
}
