package l7lb

import (
	"time"

	"hermes/internal/kernel"
)

// dispatcher implements the userspace-dispatcher baseline of §2.2: one
// dedicated pseudo-core fetches every epoll event (listen and connection
// sockets alike) and fans the work out to executor workers, always choosing
// the least-loaded queue. The design gives perfect job-level balance but
// serializes all event intake through one core — the bottleneck the paper
// predicts for high-CPS network workloads.
type dispatcher struct {
	lb *LB
	w  *Worker // the dispatcher's own core (accounting + epoll)

	// onWakeFn is the pre-bound onWake method value (binding per Wait
	// call allocates on every loop iteration).
	onWakeFn func([]kernel.Event)
}

func newDispatcher(lb *LB) *dispatcher {
	d := &dispatcher{lb: lb, w: newWorker(lb, -1, NopHook{})}
	d.onWakeFn = d.onWake
	// The dispatcher core traces on the track one past the executors (the
	// kernel track is reserved for the netstack).
	d.w.tr = lb.Cfg.Tracer.WorkerTrace(lb.Cfg.Workers)
	d.w.ep.InstrumentTrace(d.w.tr)
	for _, s := range lb.shared {
		d.w.ep.Add(s)
	}
	return d
}

func (d *dispatcher) start() { d.loop() }

func (d *dispatcher) loop() {
	if d.w.crashed {
		return
	}
	d.w.waitStart = d.lb.Eng.Now()
	d.w.ep.Wait(d.lb.Cfg.Hermes.MaxEvents, d.lb.Cfg.Hermes.EpollTimeout, d.onWakeFn)
}

func (d *dispatcher) onWake(evs []kernel.Event) {
	if d.w.crashed {
		return
	}
	d.processBatch(evs, 0)
}

func (d *dispatcher) processBatch(evs []kernel.Event, i int) {
	if i >= len(evs) {
		d.loop()
		return
	}
	cost := d.handle(evs[i])
	d.w.beginWork(cost)
	d.lb.Eng.After(cost, func() {
		d.w.endWork()
		d.processBatch(evs, i+1)
	})
}

// handle runs on the dispatcher core: it performs the cheap event intake
// itself and pushes the expensive request processing to an executor.
func (d *dispatcher) handle(ev kernel.Event) time.Duration {
	costs := d.lb.Cfg.Costs
	switch ev.Kind {
	case kernel.EvAccept:
		conn, ok := ev.Sock.Accept()
		if !ok {
			return costs.SpuriousWake
		}
		d.w.Accepted++
		d.w.tr.Accept(uint64(conn.ID), conn.EstablishedNS, conn.AcceptedNS)
		d.w.addConn(conn.Sock())
		return costs.Accept + costs.Dispatch
	case kernel.EvReadable:
		payload, ok := ev.Sock.PopData()
		if !ok {
			return costs.SpuriousWake
		}
		work := payload.(Work)
		sock := ev.Sock
		// The executor's completion fires later; capture a checked ref now
		// in case the connection is reset and recycled meanwhile.
		connRef := sock.Conn().Ref()
		ex := d.leastLoaded()
		ex.pushJob(work.Cost, func() {
			ex.Completed++
			// The job ran contiguously for work.Cost ending now, so the
			// serve span's start is recoverable without threading it through.
			end := d.lb.Eng.Now()
			ex.tr.Serve(uint64(connRef.ID()), work.ArrivalNS, end-int64(work.Cost), end, work.Probe)
			d.lb.recordCompletion(ex, connRef, work)
			if work.Close && connRef.Get() != nil {
				d.w.closeConn(sock)
			}
		})
		return costs.Dispatch
	case kernel.EvHangup:
		d.w.closeConn(ev.Sock)
		return costs.Close
	default:
		return 0
	}
}

func (d *dispatcher) leastLoaded() *Worker {
	best := d.lb.Workers[0]
	for _, w := range d.lb.Workers[1:] {
		if w.queuedCostNS < best.queuedCostNS {
			best = w
		}
	}
	return best
}
