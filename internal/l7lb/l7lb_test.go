package l7lb

import (
	"math/rand"
	"testing"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/sim"
)

// openConn completes a handshake for a fresh client connection to port.
func openConn(t *testing.T, lb *LB, src uint32, port uint16) *kernel.Conn {
	t.Helper()
	conn, ok := lb.NS.DeliverSYN(kernel.FourTuple{
		SrcIP: src, SrcPort: uint16(1024 + src%60000), DstIP: 0x0a00_0001, DstPort: port,
	}, nil)
	if !ok {
		t.Fatalf("SYN to %d rejected", port)
	}
	return conn
}

// sendReq delivers one request on an established connection.
func sendReq(lb *LB, conn *kernel.Conn, cost time.Duration, closeAfter bool) {
	lb.NS.DeliverData(conn, Work{
		ArrivalNS: lb.Eng.Now(),
		Cost:      cost,
		Size:      200,
		RespSize:  500,
		Close:     closeAfter,
		Tenant:    conn.Tuple.DstPort,
	})
}

func modesUnderTest() []Mode {
	return []Mode{
		ModeExclusive, ModeExclusiveRR, ModeHerd, ModeAcceptMutex,
		ModeReuseport, ModeHermes, ModeHermesNative, ModeDispatcher,
	}
}

// Smoke test: every mode serves a steady trickle of short requests with no
// losses and sane latency.
func TestAllModesServeTraffic(t *testing.T) {
	for _, mode := range modesUnderTest() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			eng := sim.NewEngine(1)
			cfg := DefaultConfig(mode)
			cfg.Workers = 4
			lb, err := New(eng, cfg)
			if err != nil {
				t.Fatal(err)
			}
			lb.Start()

			const conns = 100
			for i := 0; i < conns; i++ {
				i := i
				eng.At(int64(i)*int64(100*time.Microsecond), func() {
					c := openConn(t, lb, uint32(i), 8080)
					eng.After(50*time.Microsecond, func() {
						sendReq(lb, c, 30*time.Microsecond, true)
					})
				})
			}
			eng.RunUntil(int64(time.Second))

			if lb.Completed != conns {
				t.Fatalf("completed %d of %d", lb.Completed, conns)
			}
			if p99 := lb.Latency.Percentile(99); p99 > 50 {
				t.Fatalf("P99 latency %v ms is absurd for idle system", p99)
			}
			if lb.BytesOut != conns*500 || lb.BytesIn != conns*200 {
				t.Fatalf("bytes: in=%d out=%d", lb.BytesIn, lb.BytesOut)
			}
			if lb.TotalBusyNS() == 0 {
				t.Fatal("no busy time accounted")
			}
		})
	}
}

// Fig. 2 behaviour: under exclusive wakeup, connections concentrate on the
// most recently registered workers; reuseport and Hermes spread them.
func TestConnectionConcentrationByMode(t *testing.T) {
	spread := func(mode Mode) []int {
		eng := sim.NewEngine(7)
		cfg := DefaultConfig(mode)
		cfg.Workers = 8
		lb, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lb.Start()
		// Long-lived idle connections arriving slowly (Case-3-like): each
		// accept completes long before the next SYN, so LIFO always finds
		// the same worker idle.
		for i := 0; i < 400; i++ {
			i := i
			eng.At(int64(i)*int64(200*time.Microsecond), func() {
				openConn(t, lb, uint32(i), 8080)
			})
		}
		eng.RunUntil(int64(200 * time.Millisecond))
		return lb.WorkerConnCounts()
	}

	excl := spread(ModeExclusive)
	maxExcl, total := 0, 0
	for _, c := range excl {
		total += c
		if c > maxExcl {
			maxExcl = c
		}
	}
	if total != 400 {
		t.Fatalf("exclusive served %d conns: %v", total, excl)
	}
	if maxExcl < 350 {
		t.Fatalf("exclusive should concentrate conns on one worker: %v", excl)
	}

	for _, mode := range []Mode{ModeReuseport, ModeHermes} {
		counts := spread(mode)
		for i, c := range counts {
			if c < 20 || c > 90 {
				t.Fatalf("%v worker %d holds %d conns, want ~50: %v", mode, i, c, counts)
			}
		}
	}
}

// Hermes must route around a worker hung on an expensive request; stateless
// reuseport keeps hashing connections onto it (§6.2 Case 2, §7 failures).
func TestHermesAvoidsHungWorkerReuseportDoesNot(t *testing.T) {
	run := func(mode Mode) (hungQueued int, completed uint64) {
		eng := sim.NewEngine(3)
		cfg := DefaultConfig(mode)
		cfg.Workers = 4
		lb, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lb.Start()

		// Warm up: a conn per worker so Hermes has fresh metrics.
		for i := 0; i < 8; i++ {
			i := i
			eng.At(int64(i)*int64(time.Millisecond), func() {
				openConn(t, lb, uint32(1000+i), 8080)
			})
		}
		// Hang whichever worker owns a specific conn with a 5s request.
		var victim *Worker
		eng.At(int64(20*time.Millisecond), func() {
			c := openConn(t, lb, 1, 8080)
			eng.After(time.Millisecond, func() {
				sendReq(lb, c, 5*time.Second, false)
				eng.After(2*time.Millisecond, func() {
					for _, w := range lb.Workers {
						if w.OwnsConn(c.Sock()) {
							victim = w
						}
					}
				})
			})
		})
		// After the hang threshold passes, pour in 200 short connections.
		for i := 0; i < 200; i++ {
			i := i
			eng.At(int64(100*time.Millisecond)+int64(i)*int64(300*time.Microsecond), func() {
				c := openConn(t, lb, uint32(2000+i), 8080)
				eng.After(100*time.Microsecond, func() {
					sendReq(lb, c, 20*time.Microsecond, true)
				})
			})
		}
		eng.RunUntil(int64(400 * time.Millisecond))
		if victim == nil {
			t.Fatal("victim worker not identified")
		}
		// Connections stuck on the hung worker: in its accept queue or its
		// conns with pending data.
		var g = lb.Groups()[0]
		hungQueued = g.Sockets()[victim.ID].QueueLen()
		return hungQueued, lb.Completed
	}

	rQueued, rDone := run(ModeReuseport)
	hQueued, hDone := run(ModeHermes)
	if rQueued == 0 {
		t.Fatalf("reuseport should strand conns on the hung worker (queued=%d done=%d)", rQueued, rDone)
	}
	if hQueued != 0 {
		t.Fatalf("hermes stranded %d conns on the hung worker", hQueued)
	}
	if hDone <= rDone {
		t.Fatalf("hermes completed %d ≤ reuseport %d", hDone, rDone)
	}
}

func TestMaxConnsPerWorkerResets(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(ModeReuseport)
	cfg.Workers = 2
	cfg.MaxConnsPerWorker = 10
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var resets int
	lb.OnConnReset = func(kernel.ConnRef) { resets++ }
	lb.Start()
	for i := 0; i < 100; i++ {
		i := i
		eng.At(int64(i)*int64(100*time.Microsecond), func() {
			openConn(t, lb, uint32(i), 8080)
		})
	}
	eng.RunUntil(int64(100 * time.Millisecond))
	for _, w := range lb.Workers {
		if w.OpenConns() > 10 {
			t.Fatalf("worker %d holds %d conns over cap", w.ID, w.OpenConns())
		}
	}
	if lb.ConnsReset == 0 || resets != int(lb.ConnsReset) {
		t.Fatalf("resets=%d lb.ConnsReset=%d", resets, lb.ConnsReset)
	}
}

func TestSheddingPolicy(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(ModeHermes)
	cfg.Workers = 2
	cfg.Shed = ShedPolicy{Enabled: true, ConnThreshold: 5}
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	for i := 0; i < 60; i++ {
		i := i
		eng.At(int64(i)*int64(50*time.Microsecond), func() {
			openConn(t, lb, uint32(i), 8080)
		})
	}
	eng.RunUntil(int64(50 * time.Millisecond))
	for _, w := range lb.Workers {
		if w.OpenConns() > 5 {
			t.Fatalf("worker %d holds %d conns over shed threshold", w.ID, w.OpenConns())
		}
	}
	if lb.ConnsReset == 0 {
		t.Fatal("no sheds recorded")
	}
}

func TestCrashDropsConnsAndNotifies(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(ModeReuseport)
	cfg.Workers = 2
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var resets int
	lb.OnConnReset = func(kernel.ConnRef) { resets++ }
	lb.Start()
	for i := 0; i < 40; i++ {
		i := i
		eng.At(int64(i)*int64(100*time.Microsecond), func() {
			openConn(t, lb, uint32(i), 8080)
		})
	}
	eng.RunUntil(int64(20 * time.Millisecond))
	w := lb.Workers[0]
	had := w.OpenConns()
	if had == 0 {
		t.Fatal("worker 0 owns no conns")
	}
	w.Crash(true)
	if !w.Crashed() || w.OpenConns() != 0 {
		t.Fatal("crash did not drop conns")
	}
	if resets != had {
		t.Fatalf("resets=%d, want %d", resets, had)
	}
	// Crashed worker serves nothing more.
	before := w.Completed
	eng.RunUntil(int64(40 * time.Millisecond))
	if w.Completed != before {
		t.Fatal("crashed worker completed requests")
	}
}

func TestOnResponseClosedLoop(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(ModeHermes)
	cfg.Workers = 2
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Closed loop: each response triggers the next request, 5 total.
	sent := 0
	lb.OnResponse = func(conn kernel.ConnRef, work Work) {
		if c := conn.Get(); c != nil && sent < 5 && !work.Close {
			sent++
			final := sent == 5
			sendReq(lb, c, 10*time.Microsecond, final)
		}
	}
	lb.Start()
	c := openConn(t, lb, 1, 8080)
	eng.After(time.Millisecond, func() {
		sent++
		sendReq(lb, c, 10*time.Microsecond, false)
	})
	eng.RunUntil(int64(100 * time.Millisecond))
	if lb.Completed != 5 {
		t.Fatalf("completed %d, want 5 closed-loop requests", lb.Completed)
	}
}

// The dispatcher core saturates before executors do under high CPS — the
// bottleneck §2.2 predicts.
func TestDispatcherBottleneck(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(ModeDispatcher)
	cfg.Workers = 8
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	// 2000 conns in 20ms, each one cheap request: intake dominates.
	for i := 0; i < 2000; i++ {
		i := i
		eng.At(int64(i)*int64(10*time.Microsecond), func() {
			c := openConn(t, lb, uint32(i), 8080)
			eng.After(5*time.Microsecond, func() {
				sendReq(lb, c, 5*time.Microsecond, true)
			})
		})
	}
	eng.RunUntil(int64(100 * time.Millisecond))
	dispBusy := lb.Dispatcher.w.BusyNS(eng.Now())
	var maxExec int64
	for _, w := range lb.Workers {
		if b := w.BusyNS(eng.Now()); b > maxExec {
			maxExec = b
		}
	}
	if dispBusy <= maxExec {
		t.Fatalf("dispatcher busy %d ≤ max executor %d; should be the bottleneck", dispBusy, maxExec)
	}
	if lb.Completed == 0 {
		t.Fatal("dispatcher mode served nothing")
	}
}

func TestBackendPoolRoundRobinRestart(t *testing.T) {
	imbalance := func(randomize bool) float64 {
		pool := NewBackendPool(10)
		pool.RandomizeOffsets = randomize
		rng := rand.New(rand.NewSource(11))
		clients := make([]*BackendClient, 16)
		for i := range clients {
			clients[i] = pool.NewClient()
		}
		pool.UpdateServers(10, rng) // controller pushes a new list
		// Each worker forwards only a couple of requests after the update
		// (the §7 failure condition: few requests per worker).
		for _, c := range clients {
			c.Pick()
			c.Pick()
		}
		max, min := uint64(0), uint64(1<<62)
		for _, b := range pool.Servers() {
			if b.Requests > max {
				max = b.Requests
			}
			if b.Requests < min {
				min = b.Requests
			}
		}
		return float64(max) - float64(min)
	}
	lockstep := imbalance(false)
	randomized := imbalance(true)
	if lockstep < 10 {
		t.Fatalf("lockstep restart should pile onto first servers (spread %v)", lockstep)
	}
	if randomized >= lockstep {
		t.Fatalf("randomized offsets did not help: %v >= %v", randomized, lockstep)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Workers: 0, Ports: []uint16{80}},
		{Workers: 1, Ports: nil},
		{Workers: 1, Ports: []uint16{80, 80}},
		func() Config {
			c := DefaultConfig(ModeHermes)
			c.Hermes.MinWorkers = 0 // invalid hermes sub-config
			return c
		}(),
		func() Config {
			c := DefaultConfig(ModeReuseport)
			c.MaxConnsPerWorker = -1
			return c
		}(),
	}
	for i, c := range bad {
		if c.Mode == 0 {
			c.Mode = ModeExclusive
			c.Hermes = DefaultConfig(ModeExclusive).Hermes
		}
		if _, err := New(sim.NewEngine(1), c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range modesUnderTest() {
		if m.String() == "" || m.String()[0] == 'M' {
			t.Errorf("mode %d has bad string %q", m, m.String())
		}
	}
	if !ModeHermes.UsesHermes() || !ModeHermesNative.UsesHermes() || ModeReuseport.UsesHermes() {
		t.Fatal("UsesHermes misclassifies")
	}
}

func TestDetailedStatsCollected(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(ModeHermes)
	cfg.Workers = 2
	cfg.DetailedStats = true
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	for i := 0; i < 20; i++ {
		i := i
		eng.At(int64(i)*int64(time.Millisecond), func() {
			c := openConn(t, lb, uint32(i), 8080)
			eng.After(100*time.Microsecond, func() {
				sendReq(lb, c, 50*time.Microsecond, true)
			})
		})
	}
	eng.RunUntil(int64(100 * time.Millisecond))
	gotEvents, gotBlocks := false, false
	for _, w := range lb.Workers {
		if w.EventsPerWait.N() > 0 {
			gotEvents = true
		}
		if w.BlockNS.N() > 0 {
			gotBlocks = true
		}
	}
	if !gotEvents || !gotBlocks {
		t.Fatal("detailed stats not collected")
	}
}
