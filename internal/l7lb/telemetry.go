package l7lb

import (
	"hermes/internal/core"
	"hermes/internal/kernel"
	"hermes/internal/telemetry"
)

// This file wires the cross-layer metric catalog (docs/TELEMETRY.md) into
// the kernel, eBPF, core, and worker layers. All instrument handles are
// obtained here, once, at build time; the layers only ever touch handles.
// With Config.Telemetry unset every handle is nil and recording no-ops.

// timelineDepth is the per-worker ring depth for sampled timelines.
const timelineDepth = 512

// lbInstruments holds the LB-level telemetry handles. Zero value = all nil
// = disabled.
type lbInstruments struct {
	// kernel layer, indexed by worker id.
	epWakeups  *telemetry.CounterVec
	epSpurious *telemetry.CounterVec
	epTimeouts *telemetry.CounterVec
	epEvents   *telemetry.CounterVec
	epWaitNS   *telemetry.Histogram

	qEnqueued  *telemetry.CounterVec
	qDropped   *telemetry.CounterVec
	qDepthPeak *telemetry.GaugeVec

	// l7lb layer.
	served     *telemetry.CounterVec
	accepted   *telemetry.CounterVec
	acceptWait *telemetry.Histogram
	latency    *telemetry.Histogram
	openConns  *telemetry.TimelineVec
}

func wireTelemetry(lb *LB) {
	sink := lb.Cfg.Telemetry
	if sink == nil {
		return
	}
	n := lb.Cfg.Workers
	t := &lb.tel

	t.epWakeups = sink.CounterVec(telemetry.Metric{
		Name: "kernel.epoll.wakeups", Layer: "kernel", Unit: "wakeups",
		Help: "completed epoll_wait calls per worker, including timeouts"}, n)
	t.epSpurious = sink.CounterVec(telemetry.Metric{
		Name: "kernel.epoll.spurious_wakeups", Layer: "kernel", Unit: "wakeups",
		Help: "wakeups that delivered zero events per worker (herd waste)"}, n)
	t.epTimeouts = sink.CounterVec(telemetry.Metric{
		Name: "kernel.epoll.timeouts", Layer: "kernel", Unit: "wakeups",
		Help: "epoll_wait timeouts per worker"}, n)
	t.epEvents = sink.CounterVec(telemetry.Metric{
		Name: "kernel.epoll.events", Layer: "kernel", Unit: "events",
		Help: "events delivered per worker"}, n)
	t.epWaitNS = sink.Histogram(telemetry.Metric{
		Name: "kernel.epoll.wait_ns", Layer: "kernel", Unit: "ns",
		Help: "time blocked per epoll_wait (0 for immediate returns)"}, telemetry.DurationBuckets())

	t.qEnqueued = sink.CounterVec(telemetry.Metric{
		Name: "kernel.accept_queue.enqueued", Layer: "kernel", Unit: "conns",
		Help: "connections enqueued per worker's listen socket (slot 0 for shared sockets)"}, n)
	t.qDropped = sink.CounterVec(telemetry.Metric{
		Name: "kernel.accept_queue.dropped", Layer: "kernel", Unit: "conns",
		Help: "connections dropped on accept-queue overflow"}, n)
	t.qDepthPeak = sink.GaugeVec(telemetry.Metric{
		Name: "kernel.accept_queue.depth_peak", Layer: "kernel", Unit: "conns",
		Help: "high-water accept-queue depth per worker's listen socket"}, n)

	lb.NS.Instrument(kernel.WakeInstruments{
		Herd: sink.Counter(telemetry.Metric{
			Name: "kernel.wakeups.herd", Layer: "kernel", Unit: "wakes",
			Help: "thundering-herd wake-everyone decisions"}),
		LIFO: sink.Counter(telemetry.Metric{
			Name: "kernel.wakeups.exclusive_lifo", Layer: "kernel", Unit: "wakes",
			Help: "EPOLLEXCLUSIVE LIFO wake decisions"}),
		RR: sink.Counter(telemetry.Metric{
			Name: "kernel.wakeups.exclusive_rr", Layer: "kernel", Unit: "wakes",
			Help: "epoll-rr wake decisions"}),
		FIFO: sink.Counter(telemetry.Metric{
			Name: "kernel.wakeups.exclusive_fifo", Layer: "kernel", Unit: "wakes",
			Help: "io_uring-style FIFO wake decisions"}),
	})

	if len(lb.groups) > 0 {
		gi := kernel.GroupInstruments{
			Steered: sink.CounterVec(telemetry.Metric{
				Name: "kernel.reuseport.steered", Layer: "kernel", Unit: "conns",
				Help: "connections dispatched to each worker's reuseport socket"}, n),
			ProgHits: sink.Counter(telemetry.Metric{
				Name: "kernel.reuseport.prog_hits", Layer: "kernel", Unit: "conns",
				Help: "dispatches decided by the attached program/selector"}),
			HashPicks: sink.Counter(telemetry.Metric{
				Name: "kernel.reuseport.hash_picks", Layer: "kernel", Unit: "conns",
				Help: "plain reuseport hash dispatches (no selector attached)"}),
			Fallbacks: sink.Counter(telemetry.Metric{
				Name: "kernel.reuseport.fallbacks", Layer: "kernel", Unit: "conns",
				Help: "selector declines that fell back to hashing"}),
			ProgErrors: sink.Counter(telemetry.Metric{
				Name: "kernel.reuseport.prog_errors", Layer: "kernel", Unit: "errors",
				Help: "selector execution errors (also fall back)"}),
		}
		for _, g := range lb.groups {
			g.Instrument(gi)
			for i, s := range g.Sockets() {
				s.Instrument(kernel.QueueInstruments{
					Enqueued:  t.qEnqueued.At(i),
					Dropped:   t.qDropped.At(i),
					DepthPeak: t.qDepthPeak.At(i),
				})
			}
		}
	}
	for _, s := range lb.shared {
		// One shared socket serves every worker; its queue metrics live in
		// slot 0.
		s.Instrument(kernel.QueueInstruments{
			Enqueued:  t.qEnqueued.At(0),
			Dropped:   t.qDropped.At(0),
			DepthPeak: t.qDepthPeak.At(0),
		})
	}

	if lb.ctl != nil {
		lb.ctl.Instrument(core.Instruments{
			Recomputes: sink.Counter(telemetry.Metric{
				Name: "core.schedule.recomputes", Layer: "core", Unit: "passes",
				Help: "schedule_and_sync invocations (Algorithm 1 runs)"}),
			Syncs: sink.Counter(telemetry.Metric{
				Name: "core.schedule.syncs", Layer: "core", Unit: "syscalls",
				Help: "successful kernel selection-map updates"}),
			WSTReads: sink.Counter(telemetry.Metric{
				Name: "core.schedule.wst_reads", Layer: "core", Unit: "rows",
				Help: "Worker Status Table rows read by scheduling passes"}),
			EmptySets: sink.Counter(telemetry.Metric{
				Name: "core.schedule.empty_sets", Layer: "core", Unit: "passes",
				Help: "passes selecting nobody (kernel hash fallback)"}),
			SyncBatched: sink.Counter(telemetry.Metric{
				Name: "core.schedule.sync_batched", Layer: "core", Unit: "passes",
				Help: "schedule_and_sync calls coalesced onto a quantum's cached result"}),
			Passed: sink.Histogram(telemetry.Metric{
				Name: "core.schedule.passed", Layer: "core", Unit: "workers",
				Help: "workers surviving the whole cascade per pass"}, telemetry.CountBuckets(64)),
		})
		upd := sink.Counter(telemetry.Metric{
			Name: "ebpf.selmap.updates", Layer: "ebpf", Unit: "syscalls",
			Help: "userspace selection-map update operations"})
		lkp := sink.Counter(telemetry.Metric{
			Name: "ebpf.selmap.lookups", Layer: "ebpf", Unit: "ops",
			Help: "selection-map element reads (kernel + userspace)"})
		if lb.Ctl != nil {
			lb.Ctl.SelMap().Instrument(upd, lkp)
		}
		if lb.GCtl != nil {
			for gi := 0; gi < lb.GCtl.Groups(); gi++ {
				lb.GCtl.SelMap(gi).Instrument(upd, lkp)
			}
		}
		// JIT counters exist only in ModeHermes — the one mode that attaches
		// bytecode and compiles it. Creating them conditionally (not just
		// leaving them at zero) lets the metrics checker assert they are
		// absent everywhere else. wireTelemetry runs after AttachEBPF, so the
		// compiled form is already installed here; a nil Compiled means the
		// compiler declined and the group runs interpreted.
		if lb.Cfg.Mode == ModeHermes {
			jitRuns := sink.Counter(telemetry.Metric{
				Name: "ebpf.jit.runs", Layer: "ebpf", Unit: "runs",
				Help: "dispatch decisions executed by the compiled (JIT) program"})
			jitPrograms := sink.Counter(telemetry.Metric{
				Name: "ebpf.jit.programs", Layer: "ebpf", Unit: "programs",
				Help: "programs lowered to native closure chains"})
			jitInsns := sink.Counter(telemetry.Metric{
				Name: "ebpf.jit.insns", Layer: "ebpf", Unit: "insns",
				Help: "source bytecode instructions across compiled programs"})
			jitClosures := sink.Counter(telemetry.Metric{
				Name: "ebpf.jit.closures", Layer: "ebpf", Unit: "closures",
				Help: "native closures after idiom fusion (vs insns: fusion ratio)"})
			for _, g := range lb.groups {
				if c := g.Compiled(); c != nil {
					c.Instrument(jitRuns)
					jitPrograms.Inc()
					jitInsns.Add(uint64(c.Insns()))
					jitClosures.Add(uint64(c.Closures()))
				}
			}
		}
	}

	t.served = sink.CounterVec(telemetry.Metric{
		Name: "l7lb.worker.requests_served", Layer: "l7lb", Unit: "reqs",
		Help: "requests completed per worker"}, n)
	t.accepted = sink.CounterVec(telemetry.Metric{
		Name: "l7lb.worker.conns_accepted", Layer: "l7lb", Unit: "conns",
		Help: "connections accepted per worker"}, n)
	t.acceptWait = sink.Histogram(telemetry.Metric{
		Name: "l7lb.accept_wait_ns", Layer: "l7lb", Unit: "ns",
		Help: "accept-queue wait (handshake completion to accept)"}, telemetry.DurationBuckets())
	t.latency = sink.Histogram(telemetry.Metric{
		Name: "l7lb.request_latency_ns", Layer: "l7lb", Unit: "ns",
		Help: "end-to-end request latency"}, telemetry.DurationBuckets())
	t.openConns = sink.TimelineVec(telemetry.Metric{
		Name: "l7lb.worker.open_conns", Layer: "l7lb", Unit: "conns",
		Help: "live connection count per worker, sampled at loop entry"}, n, timelineDepth)
}
