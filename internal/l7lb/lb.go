package l7lb

import (
	"fmt"
	"time"

	"hermes/internal/core"
	"hermes/internal/kernel"
	"hermes/internal/sim"
	"hermes/internal/stats"
)

// LB is one simulated L7 LB device: a netstack, a set of workers, and the
// dispatch mode's wiring. Workload generators inject traffic through NS and
// observe results through the counters and samples here.
type LB struct {
	// Eng is the virtual clock everything runs on.
	Eng *sim.Engine
	// NS is the device's simulated kernel.
	NS *kernel.NetStack
	// Cfg is the build configuration.
	Cfg Config

	// Workers are the event-loop workers (executors in ModeDispatcher).
	Workers []*Worker
	// Dispatcher is the extra dispatcher pseudo-core (ModeDispatcher only).
	Dispatcher *dispatcher
	// Ctl is the Hermes controller (Hermes modes, ≤64 workers).
	Ctl *core.Controller
	// GCtl is the two-level grouped controller (Hermes modes, >64 workers, §7).
	GCtl *core.GroupedController

	ctl         core.Instance // whichever of Ctl/GCtl is active
	groups      []*kernel.ReuseportGroup
	shared      []*kernel.Socket
	mutex       *acceptMutex
	acceptExtra time.Duration // per-accept dispatch overhead (mode-dependent)
	tel         lbInstruments
	probeSinks  []func(work Work, latencyNS int64)

	// Latency samples end-to-end request time (ms).
	Latency stats.Sample
	// ProbeLatency samples health-probe time (ms), Fig. 11.
	ProbeLatency stats.Sample
	// Completed counts finished requests (excluding probes).
	Completed uint64
	// ProbesCompleted counts finished probes.
	ProbesCompleted uint64
	// BytesIn / BytesOut total request/response bytes.
	BytesIn  uint64
	BytesOut uint64
	// ConnsReset counts RSTs from pool exhaustion, shedding, and crashes.
	ConnsReset uint64

	// OnResponse, if set, fires at each request completion — closed-loop
	// clients use it to send their next request. The conn ref must be
	// revalidated (ConnRef.Get) before use: the connection may have been
	// reset — and its pooled object recycled — between serve start and
	// completion.
	OnResponse func(conn kernel.ConnRef, work Work)
	// OnConnReset, if set, fires when the LB resets a connection, so the
	// workload can model client reconnects. The ref's ID is always the
	// reset connection's ID; Get still resolves within the callback.
	OnConnReset func(conn kernel.ConnRef)
	// Guard, if set before Start, attributes hang events to tenants and
	// quarantines repeat offenders (Appendix C).
	Guard *TenantGuard
}

// New assembles an LB on the engine. Call Start to begin the worker loops.
func New(eng *sim.Engine, cfg Config) (*LB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	wake := kernel.WakeExclusiveLIFO
	switch cfg.Mode {
	case ModeHerd:
		wake = kernel.WakeHerd
	case ModeExclusiveRR:
		wake = kernel.WakeExclusiveRR
	case ModeIOUring:
		wake = kernel.WakeExclusiveFIFO
	}
	lb := &LB{
		Eng: eng,
		NS:  kernel.NewNetStack(eng, wake),
		Cfg: cfg,
	}
	lb.NS.SetBurstWidth(cfg.BatchWidth)

	switch cfg.Mode {
	case ModeExclusive, ModeExclusiveRR, ModeHerd, ModeAcceptMutex, ModeDispatcher, ModeIOUring:
		for _, p := range cfg.Ports {
			s, err := lb.NS.ListenShared(p, cfg.Backlog)
			if err != nil {
				return nil, err
			}
			lb.shared = append(lb.shared, s)
		}
	case ModeReuseport, ModeHermes, ModeHermesNative:
		for _, p := range cfg.Ports {
			g, err := lb.NS.ListenReuseport(p, cfg.Workers, cfg.Backlog)
			if err != nil {
				return nil, err
			}
			lb.groups = append(lb.groups, g)
		}
	default:
		return nil, fmt.Errorf("l7lb: unknown mode %v", cfg.Mode)
	}

	if cfg.Mode.UsesHermes() {
		// core.New picks the deployment level: ≤64 workers single-level,
		// more get the two-level grouped deployment (§7): hash to a
		// ≤64-worker group, bitmap-select within it.
		inst, err := core.New(cfg.Workers, cfg.Hermes, core.WithGroupKey(core.GroupByTupleHash))
		if err != nil {
			return nil, err
		}
		lb.ctl = inst
		switch c := inst.(type) {
		case *core.Controller:
			lb.Ctl = c
		case *core.GroupedController:
			lb.GCtl = c
		}
		inst.SetFilterOrder(cfg.FilterOrder)
		for _, g := range lb.groups {
			if cfg.Mode == ModeHermes {
				err = inst.AttachEBPF(g)
			} else {
				err = inst.AttachNative(g)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	if cfg.Mode == ModeAcceptMutex {
		lb.mutex = &acceptMutex{}
	}
	wireTelemetry(lb)
	wireTracing(lb)

	for i := 0; i < cfg.Workers; i++ {
		var hook Hook = NopHook{}
		if lb.ctl != nil {
			hook = coreHook{lb.ctl.Hook(i)}
		}
		w := newWorker(lb, i, hook)
		if cfg.Backends != nil {
			w.backend = cfg.Backends.NewClient()
		}
		lb.Workers = append(lb.Workers, w)
		lb.registerWorkerSockets(w)
	}
	if cfg.Mode == ModeDispatcher {
		lb.Dispatcher = newDispatcher(lb)
	}

	registered := cfg.RegisteredPorts
	if registered == 0 {
		registered = len(cfg.Ports)
	}
	switch cfg.Mode {
	case ModeReuseport, ModeHermes, ModeHermesNative:
		lb.acceptExtra = time.Duration(len(cfg.Ports)) * cfg.Costs.PerWatch
	default:
		lb.acceptExtra = time.Duration(registered) * cfg.Costs.PerWatch
	}
	return lb, nil
}

// Start launches all worker loops (and the dispatcher) at the current
// virtual time.
func (lb *LB) Start() {
	for _, w := range lb.Workers {
		w.Start()
	}
	if lb.Dispatcher != nil {
		lb.Dispatcher.start()
	}
}

// registerWorkerSockets wires a worker's epoll (or its mode-specific role)
// to the listening sockets: shared-socket modes register every listener,
// accept-mutex workers register lazily while holding the mutex, dispatcher
// executors run job queues instead, and reuseport/Hermes workers own their
// group slot. Called at build time and again when a crashed worker
// restarts with a fresh epoll instance.
func (lb *LB) registerWorkerSockets(w *Worker) {
	switch lb.Cfg.Mode {
	case ModeExclusive, ModeExclusiveRR, ModeHerd, ModeIOUring:
		for _, s := range lb.shared {
			w.ep.Add(s)
		}
	case ModeAcceptMutex:
		w.listenSocks = lb.shared
	case ModeDispatcher:
		w.executor = true
	case ModeReuseport, ModeHermes, ModeHermesNative:
		for _, g := range lb.groups {
			w.ep.Add(g.Sockets()[w.ID])
		}
	}
}

// Groups returns the per-port reuseport groups (reuseport/Hermes modes).
func (lb *LB) Groups() []*kernel.ReuseportGroup { return lb.groups }

// SharedSockets returns the shared listening sockets (shared-socket modes).
func (lb *LB) SharedSockets() []*kernel.Socket { return lb.shared }

// SetWorkerAvailable vetoes (ok=false) or restores (ok=true) one worker in
// the published selection bitmap: the eviction path backend-health wiring and
// graceful drains share (docs/PROXY.md). The veto is ANDed onto every
// Algorithm-1 result until lifted; single-level deployments only.
func (lb *LB) SetWorkerAvailable(id int, ok bool) error {
	if lb.Ctl == nil {
		return fmt.Errorf("l7lb: worker availability veto needs the single-level controller (≤64 workers, ungrouped)")
	}
	return lb.Ctl.SetWorkerAvailable(id, ok)
}

// TotalBusyNS sums worker busy time as of now (plus the dispatcher's, if
// present).
func (lb *LB) TotalBusyNS() int64 {
	now := lb.Eng.Now()
	var t int64
	for _, w := range lb.Workers {
		t += w.BusyNS(now)
	}
	if lb.Dispatcher != nil {
		t += lb.Dispatcher.w.BusyNS(now)
	}
	return t
}

// WorkerConnCounts returns each worker's live connection count.
func (lb *LB) WorkerConnCounts() []int {
	out := make([]int, len(lb.Workers))
	for i, w := range lb.Workers {
		out[i] = w.OpenConns()
	}
	return out
}

func (lb *LB) recordCompletion(w *Worker, conn kernel.ConnRef, work Work) {
	now := lb.Eng.Now()
	lat := now - work.ArrivalNS
	if work.Probe {
		lb.ProbesCompleted++
		lb.ProbeLatency.AddDuration(lat)
		if i := int(work.ProbeSrc); i > 0 && i <= len(lb.probeSinks) {
			lb.probeSinks[i-1](work, lat)
		}
	} else {
		lb.Completed++
		lb.Latency.AddDuration(lat)
		lb.tel.latency.Observe(lat)
	}
	lb.BytesIn += uint64(work.Size)
	lb.BytesOut += uint64(work.RespSize)
	if lb.Guard != nil && !work.Probe {
		lb.Guard.Note(work.Tenant, work.Cost)
	}
	if lb.OnResponse != nil {
		lb.OnResponse(conn, work)
	}
}

// RegisterProbeSink adds a per-prober completion callback and returns the
// tag to stamp on that prober's probe Work (Work.ProbeSrc). Completions of
// tagged probes are forwarded with their latency, so several probers on one
// LB keep exact independent accounting instead of sharing the LB-global
// ProbesCompleted / ProbeLatency aggregates.
func (lb *LB) RegisterProbeSink(fn func(work Work, latencyNS int64)) int32 {
	lb.probeSinks = append(lb.probeSinks, fn)
	return int32(len(lb.probeSinks))
}

func (lb *LB) notifyReset(conn kernel.ConnRef) {
	if lb.OnConnReset != nil {
		lb.OnConnReset(conn)
	}
}

// coreHook adapts the deployment-independent core hook to the Hook seam
// (single-level and grouped controllers alike).
type coreHook struct{ h core.Hook }

func (h coreHook) LoopEnter(now int64) { h.h.LoopEnter(now) }
func (h coreHook) EventsFetched(n int) { h.h.EventsFetched(n) }
func (h coreHook) EventHandled()       { h.h.EventHandled() }
func (h coreHook) ConnOpened()         { h.h.ConnOpened() }
func (h coreHook) ConnClosed()         { h.h.ConnClosed() }
func (h coreHook) ScheduleAndSync(now int64) bool {
	h.h.ScheduleAndSync(now)
	return true
}
