// Package l7lb builds the multi-tenant L7 load balancer of §2.1 on top of
// the simulated kernel: worker processes pinned one-per-core running
// run-to-completion epoll event loops, one listening port per tenant, and a
// per-request CPU cost model covering the paper's processing classes
// (HTTP routing, TLS, protocol translation, compression, plain copying).
//
// The package assembles the same LB under every dispatch mode the paper
// compares — thundering herd, epoll-exclusive (LIFO), the unmerged epoll-rr,
// an nginx-style accept mutex, plain reuseport, a userspace dispatcher, and
// Hermes (eBPF-bytecode or native dispatch) — so the evaluation harness can
// swap only the mode and hold everything else fixed.
package l7lb

import (
	"fmt"
	"time"

	"hermes/internal/core"
	"hermes/internal/telemetry"
	"hermes/internal/tracing"
)

// Mode selects the connection dispatch mechanism.
type Mode uint8

// Dispatch modes.
const (
	// ModeExclusive: shared listen sockets, EPOLLEXCLUSIVE LIFO wakeup
	// (the pre-Hermes production default).
	ModeExclusive Mode = iota
	// ModeExclusiveRR: the unmerged epoll-rr kernel patch.
	ModeExclusiveRR
	// ModeHerd: pre-4.5 wake-everyone epoll.
	ModeHerd
	// ModeAcceptMutex: nginx-style userspace accept mutex over shared
	// sockets (§2.2).
	ModeAcceptMutex
	// ModeReuseport: per-worker SO_REUSEPORT sockets, stateless hash.
	ModeReuseport
	// ModeHermes: Hermes with the dispatch program executed by the
	// simulated eBPF VM (the faithful configuration).
	ModeHermes
	// ModeHermesNative: Hermes with the native-Go dispatch twin (stands in
	// for the JIT-compiled program; used for hot benchmarks/ablations).
	ModeHermesNative
	// ModeDispatcher: a dedicated userspace dispatcher worker fans events
	// out to executor workers (the DBMS-style design §2.2 rejects for LBs).
	ModeDispatcher
	// ModeIOUring: shared listen sockets with io_uring's FIFO wakeup order
	// (§8) — the extension target the paper names; imbalanced like
	// exclusive, but toward the earliest-registered workers.
	ModeIOUring
)

func (m Mode) String() string {
	switch m {
	case ModeExclusive:
		return "exclusive"
	case ModeExclusiveRR:
		return "exclusive-rr"
	case ModeHerd:
		return "herd"
	case ModeAcceptMutex:
		return "accept-mutex"
	case ModeReuseport:
		return "reuseport"
	case ModeHermes:
		return "hermes"
	case ModeHermesNative:
		return "hermes-native"
	case ModeDispatcher:
		return "dispatcher"
	case ModeIOUring:
		return "io-uring-fifo"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// UsesHermes reports whether the mode runs the Hermes control loop.
func (m Mode) UsesHermes() bool { return m == ModeHermes || m == ModeHermesNative }

// CostModel fixes the CPU cost of the LB's fixed-function operations.
// Request-specific processing cost arrives with each request (Work.Cost);
// these constants cover the event-loop plumbing around it.
type CostModel struct {
	// Accept is the base cost of accept(2) + registering the new
	// connection with epoll.
	Accept time.Duration
	// PerWatch is the extra accept-path cost per socket in the epoll
	// interest list. Exclusive-mode workers watch every tenant port, so
	// their dispatch overhead is O(#ports); reuseport/Hermes workers watch
	// one socket per port group they own (§6.2 Case 1 discussion).
	PerWatch time.Duration
	// Close is the cost of tearing down a connection.
	Close time.Duration
	// Schedule is the cost of one schedule_and_sync() pass (Algorithm 1 +
	// eBPF map update), paid only by Hermes workers (Table 5).
	Schedule time.Duration
	// SpuriousWake is the wasted CPU of a thundering-herd wakeup that
	// found nothing to do.
	SpuriousWake time.Duration
	// Dispatch is the userspace dispatcher's per-event cost (ModeDispatcher).
	Dispatch time.Duration
	// MutexOp is the accept-mutex acquire/release cost (ModeAcceptMutex).
	MutexOp time.Duration
	// UpstreamHandshake is the extra latency of opening a fresh backend
	// connection (TCP+TLS round trips to an IDC, §7) when the pool misses.
	UpstreamHandshake time.Duration
}

// DefaultCosts returns microsecond-scale constants consistent with the
// paper's 200-300µs normal request latency.
func DefaultCosts() CostModel {
	return CostModel{
		Accept:       2 * time.Microsecond,
		PerWatch:     20 * time.Nanosecond,
		Close:        time.Microsecond,
		Schedule:     500 * time.Nanosecond,
		SpuriousWake: time.Microsecond,
		Dispatch:     2 * time.Microsecond,
		MutexOp:      300 * time.Nanosecond,
		// Cross-Internet TCP+TLS setup is millisecond-scale (§7).
		UpstreamHandshake: 2 * time.Millisecond,
	}
}

// ShedPolicy is Hermes's proactive service degradation (§C, exception
// handling case 1): when a worker's live connection count exceeds the
// threshold at loop end, it RSTs the excess so clients reconnect and get
// rescheduled onto healthy workers.
type ShedPolicy struct {
	Enabled       bool
	ConnThreshold int
	// PendingThreshold, when > 0, also sheds a connection mid-drain once
	// its unread backlog exceeds the threshold — the RST that frees a
	// worker trapped by an edge-triggered connection whose upstream
	// outpaces processing (Appendix C case 1: "Hermes sends TCP RSTs to
	// terminate a subset of connections, allowing them to reconnect and be
	// rescheduled to healthy workers").
	PendingThreshold int
}

// Config assembles one LB device.
type Config struct {
	// Workers is the worker (CPU core) count.
	Workers int
	// Ports are the tenant listening ports (Fig. 1: one per tenant).
	Ports []uint16
	// Mode is the dispatch mechanism under test.
	Mode Mode
	// Hermes configures the control loop for Hermes modes.
	Hermes core.Config
	// FilterOrder selects Algorithm 1's cascade order (ablations).
	FilterOrder core.FilterOrder
	// ScheduleAtLoopStart moves schedule_and_sync() from the end of the
	// event loop to the beginning — the placement §5.3.2 warns against
	// (the scheduler then observes pre-epoll_wait status, which may be
	// stale by the time events land). Ablation only.
	ScheduleAtLoopStart bool
	// EdgeTriggered registers connection sockets with EPOLLET (Nginx's
	// discipline, Appendix C): a readable event obliges the worker to drain
	// the socket completely before returning to the loop, so a connection
	// whose upstream outpaces its processing traps the worker — the
	// 30 ms → 440 s hang the paper debugged.
	EdgeTriggered bool
	// Backlog is the per-socket accept queue capacity (0 = default).
	Backlog int
	// RegisteredPorts is the total number of tenant ports bound on the
	// device (only Ports carry generated traffic; production devices bind
	// O(10K), §7). Shared-socket modes register every port with every
	// worker's epoll, so their per-accept dispatch overhead is
	// O(RegisteredPorts); reuseport/Hermes workers pay O(len(Ports))
	// (§6.2 Case 1: "O(1) for Hermes and reuseport, but O(#ports) for
	// exclusive"). 0 means len(Ports).
	RegisteredPorts int
	// MaxConnsPerWorker models the preallocated connection pool (§5.1.1);
	// accepts beyond it are reset. 0 = unlimited.
	MaxConnsPerWorker int
	// ConnsPerWorkerHint pre-sizes each worker's connection table to the
	// cell's planned per-worker connection count, so steady-state accepts
	// never regrow the table (Worker.ConnTableGrows stays 0). 0 keeps the
	// small default; MaxConnsPerWorker still caps the pre-size.
	ConnsPerWorkerHint int
	// BatchWidth is the kernel's arrival/delivery coalescing width
	// (NetStack.SetBurstWidth): how many same-tick deliveries share one
	// flush event. ≤1 is the paper-literal one-trampoline-per-wake path;
	// any width produces a byte-identical simulation trace (the burst fuzz
	// oracle pins this), wider just costs fewer engine events.
	BatchWidth int
	// Costs is the fixed-function cost model.
	Costs CostModel
	// Shed is the optional degradation policy (Hermes modes only).
	Shed ShedPolicy
	// DetailedStats enables per-worker event/latency CDF collection
	// (Figs. 4, 5); off by default to keep long runs lean.
	DetailedStats bool
	// Backends, when set, makes every request forward to a backend via
	// round-robin (§7); pair with Upstream to model connection reuse.
	Backends *BackendPool
	// Upstream models the backend connection pool; a request whose
	// worker→backend pair has no idle pooled connection pays
	// Costs.UpstreamHandshake extra (§7 "More connections established with
	// backend servers").
	Upstream *UpstreamPool
	// Telemetry, when set, wires the cross-layer metric catalog
	// (docs/TELEMETRY.md) into the kernel, eBPF, core, and worker layers at
	// build time. Nil disables all recording: the layers then hold nil
	// instrument handles whose methods no-op.
	Telemetry telemetry.Sink
	// Tracer, when set, wires the per-connection flight recorder
	// (docs/TRACING.md) into the same layers at build time: SYN steering,
	// accept-queue residency, epoll wakeups, per-request service, closes.
	// Nil disables recording — the layers then hold nil trace handles whose
	// methods no-op, and output is byte-identical to an untraced run.
	Tracer *tracing.Tracer
}

// DefaultConfig returns a 32-core single-tenant LB in the given mode, the
// paper's testbed shape (32-core VMs, §6.1).
func DefaultConfig(mode Mode) Config {
	hermes := core.DefaultConfig()
	// Batch Algorithm-1 recomputes: one WST scan + map sync per quantum
	// serves the whole fleet. core.DefaultConfig leaves this off (the
	// paper's literal per-event-loop behaviour, and what the core unit
	// tests pin down); the assembled LB turns it on because at fleet scale
	// the N× redundant scans per loop dominate Hermes's control-loop cost.
	// 100µs is far below EpollTimeout (5ms) and HangThreshold (12ms), so
	// the staleness batching adds is negligible next to the staleness the
	// loop already tolerates.
	hermes.SyncQuantum = 100 * time.Microsecond
	return Config{
		Workers: 32,
		Ports:   []uint16{8080},
		Mode:    mode,
		Hermes:  hermes,
		Costs:   DefaultCosts(),
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("l7lb: Workers must be ≥ 1, got %d", c.Workers)
	}
	if len(c.Ports) == 0 {
		return fmt.Errorf("l7lb: at least one tenant port required")
	}
	seen := make(map[uint16]bool, len(c.Ports))
	for _, p := range c.Ports {
		if seen[p] {
			return fmt.Errorf("l7lb: duplicate port %d", p)
		}
		seen[p] = true
	}
	if c.Mode.UsesHermes() {
		if err := c.Hermes.Validate(); err != nil {
			return err
		}
		// >64 workers automatically use the two-level grouped controller
		// (§7): no upper bound beyond memory.
	}
	if c.MaxConnsPerWorker < 0 {
		return fmt.Errorf("l7lb: MaxConnsPerWorker must be ≥ 0")
	}
	if c.RegisteredPorts != 0 && c.RegisteredPorts < len(c.Ports) {
		return fmt.Errorf("l7lb: RegisteredPorts %d < active ports %d", c.RegisteredPorts, len(c.Ports))
	}
	return nil
}
