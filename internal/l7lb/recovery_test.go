package l7lb

import (
	"testing"
	"time"

	"hermes/internal/sim"
)

// Regression: a worker that crashes while blocked in epoll_wait used to
// leave its waiter armed, so the exclusive wakeup walk still saw it as
// Blocked(), woke it, and the wakeup was swallowed by the crashed worker's
// early return — the connection sat in the accept queue until some healthy
// worker's epoll timeout. Crash must tear the epoll down so the walk skips
// straight to the next idle worker.
func TestCrashWhileBlockedDoesNotSwallowExclusiveWakeup(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(ModeExclusive)
	cfg.Workers = 3
	// A huge timeout removes the accidental recovery path: pre-fix, the
	// swallowed wakeup would leave the connection unaccepted for the whole
	// test horizon instead of being picked up at the next 5ms timeout.
	cfg.Hermes.EpollTimeout = 10 * time.Second
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	eng.RunUntil(int64(time.Millisecond)) // everyone parked in epoll_wait

	// The LIFO walk starts at the most recently registered watcher, so the
	// highest-id workers shadow worker 0. Crash both of them mid-block.
	lb.Workers[1].Crash(false)
	lb.Workers[2].Crash(false)

	conn := openConn(t, lb, 42, 8080)
	eng.RunUntil(eng.Now() + int64(50*time.Millisecond))

	if conn.AcceptedNS < 0 {
		t.Fatal("wakeup swallowed: crashed blocked worker still looked idle to the exclusive walk")
	}
	if got := lb.Workers[0].OpenConns(); got != 1 {
		t.Fatalf("next idle worker should have accepted the conn, worker 0 owns %d", got)
	}
}

// The restart lifecycle: a crashed reuseport worker's slot goes dark until
// Restart rebuilds its epoll and re-registers its listen socket; afterwards
// the slot must accept new connections again.
func TestRestartRevivesReuseportSlot(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(ModeReuseport)
	cfg.Workers = 2
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	eng.RunUntil(int64(time.Millisecond))

	victim := lb.Workers[0]
	victim.Crash(true)
	eng.RunUntil(eng.Now() + int64(time.Millisecond))
	if !victim.Crashed() {
		t.Fatal("victim not crashed")
	}
	victim.Restart()
	if victim.Crashed() || victim.Restarts != 1 {
		t.Fatalf("restart did not take: crashed=%v restarts=%d", victim.Crashed(), victim.Restarts)
	}

	const conns = 64
	for i := 0; i < conns; i++ {
		i := i
		eng.At(eng.Now()+int64(i)*int64(100*time.Microsecond), func() {
			c := openConn(t, lb, uint32(i), 8080)
			eng.After(10*time.Microsecond, func() {
				sendReq(lb, c, 20*time.Microsecond, true)
			})
		})
	}
	eng.RunUntil(eng.Now() + int64(200*time.Millisecond))

	if lb.Completed != conns {
		t.Fatalf("completed %d of %d after restart", lb.Completed, conns)
	}
	// The reuseport hash spreads 64 conns over 2 slots; the revived slot
	// must have taken its share.
	if a := victim.Accepted; a == 0 {
		t.Fatal("restarted worker accepted nothing: slot still dark")
	}
}

// A hang stalls the victim's work for exactly its duration, releases
// afterward, and the busy-spin is charged to the worker's CPU accounting.
func TestHangStallsThenReleases(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(ModeExclusive)
	cfg.Workers = 1
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	conn := openConn(t, lb, 7, 8080)
	eng.RunUntil(int64(time.Millisecond))

	w := lb.Workers[0]
	t0 := eng.Now()
	busy0 := w.BusyNS(t0)
	const hang = 20 * time.Millisecond
	w.Hang(hang)
	if !w.Hung() {
		t.Fatal("worker not hung after Hang")
	}
	sendReq(lb, conn, 10*time.Microsecond, false)

	eng.RunUntil(t0 + int64(hang) - 1)
	if lb.Completed != 0 {
		t.Fatal("request completed while the worker was hung")
	}
	eng.RunUntil(t0 + int64(hang) + int64(time.Millisecond))
	if w.Hung() {
		t.Fatal("worker still hung after the hang window")
	}
	if lb.Completed != 1 {
		t.Fatalf("request not served after release: completed=%d", lb.Completed)
	}
	if spin := w.BusyNS(eng.Now()) - busy0; spin < int64(hang) {
		t.Fatalf("busy-spin not charged: busy delta %d < hang %d", spin, int64(hang))
	}
}

// A slow worker's cost multiplier scales request service time and reverts.
func TestCostMultiplierScalesService(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(ModeExclusive)
	cfg.Workers = 1
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	conn := openConn(t, lb, 9, 8080)
	eng.RunUntil(int64(time.Millisecond))

	w := lb.Workers[0]
	w.SetCostMultiplier(8)
	t0 := eng.Now()
	sendReq(lb, conn, 1*time.Millisecond, false)
	eng.RunUntil(t0 + int64(5*time.Millisecond))
	if lb.Completed != 0 {
		t.Fatal("8x-scaled 1ms request finished in under 5ms")
	}
	eng.RunUntil(t0 + int64(20*time.Millisecond))
	if lb.Completed != 1 {
		t.Fatalf("scaled request never completed: %d", lb.Completed)
	}
	w.SetCostMultiplier(1)
	t1 := eng.Now()
	sendReq(lb, conn, 1*time.Millisecond, true)
	eng.RunUntil(t1 + int64(5*time.Millisecond))
	if lb.Completed != 2 {
		t.Fatal("request still scaled after multiplier reset")
	}
}
