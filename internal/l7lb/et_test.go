package l7lb

import (
	"testing"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/sim"
)

// Kernel-level ET contract: a collected-but-undrained socket is not
// re-reported until a new edge (fresh data) arrives.
func TestEdgeTriggeredKernelContract(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := kernel.NewNetStack(eng, kernel.WakeExclusiveLIFO)
	ls, _ := ns.ListenShared(80, 8)
	conn, _ := ns.DeliverSYN(kernel.FourTuple{SrcIP: 1, SrcPort: 2, DstIP: 3, DstPort: 80}, nil)
	ls.Accept()

	ep := ns.NewEpoll()
	ep.AddET(conn.Sock())
	ns.DeliverData(conn, "a")
	ns.DeliverData(conn, "b")

	var got int
	ep.Wait(16, time.Millisecond, func(evs []kernel.Event) {
		got = len(evs)
		if got == 1 {
			evs[0].Sock.PopData() // consume only "a": leaves "b" stuck
		}
	})
	eng.Run()
	if got != 1 {
		t.Fatalf("first wait events = %d, want 1", got)
	}

	// No new edge: the stuck payload must NOT retrigger (the ET trap).
	timedOut := false
	ep.Wait(16, time.Millisecond, func(evs []kernel.Event) { timedOut = len(evs) == 0 })
	eng.Run()
	if !timedOut {
		t.Fatal("ET socket retriggered without a new edge")
	}

	// A new arrival re-arms the watch.
	ns.DeliverData(conn, "c")
	var kinds []kernel.EventKind
	ep.Wait(16, time.Millisecond, func(evs []kernel.Event) {
		for _, e := range evs {
			kinds = append(kinds, e.Kind)
		}
	})
	eng.Run()
	if len(kinds) != 1 || kinds[0] != kernel.EvReadable {
		t.Fatalf("re-arm failed: %v", kinds)
	}
	if conn.Sock().PendingData() != 2 {
		t.Fatalf("pending = %d, want 2 (b and c)", conn.Sock().PendingData())
	}
}

// The Appendix C hang: under ET, a connection whose data arrives faster than
// the worker processes it traps the worker in the drain loop; its loop
// timestamp goes stale and Hermes routes new connections around it, while
// the same worker under LT interleaves other work.
func TestEdgeTriggeredDrainTrapsWorkerAndHermesBypasses(t *testing.T) {
	eng := sim.NewEngine(2)
	cfg := DefaultConfig(ModeHermes)
	cfg.Workers = 4
	cfg.EdgeTriggered = true
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()

	// Victim connection: 100 payloads of 4ms each delivered every 1ms —
	// upstream outpaces processing, so the drain never completes.
	victim := openConn(t, lb, 1, 8080)
	eng.After(time.Millisecond, func() {
		var feed func(n int)
		feed = func(n int) {
			if n == 0 || victim.Sock().Closed() {
				return
			}
			sendReq(lb, victim, 4*time.Millisecond, false)
			eng.After(time.Millisecond, func() { feed(n - 1) })
		}
		feed(100)
	})
	eng.RunUntil(int64(50 * time.Millisecond))

	var trapped *Worker
	for _, w := range lb.Workers {
		if w.OwnsConn(victim.Sock()) {
			trapped = w
		}
	}
	if trapped == nil {
		t.Fatal("victim unowned")
	}

	// Pour in short connections: none may land on the trapped worker.
	for i := 0; i < 200; i++ {
		i := i
		eng.At(int64(60*time.Millisecond)+int64(i)*int64(200*time.Microsecond), func() {
			c := openConn(t, lb, uint32(100+i), 8080)
			eng.After(50*time.Microsecond, func() {
				sendReq(lb, c, 10*time.Microsecond, true)
			})
		})
	}
	eng.RunUntil(int64(200 * time.Millisecond))

	if q := lb.Groups()[0].Sockets()[trapped.ID].QueueLen(); q != 0 {
		t.Fatalf("hermes sent %d conns to the ET-trapped worker", q)
	}
	served := uint64(0)
	for _, w := range lb.Workers {
		if w != trapped {
			served += w.Completed
		}
	}
	if served < 190 {
		t.Fatalf("healthy workers served only %d of 200", served)
	}
	// The trapped worker is still mid-drain (or just finished a long one):
	// its completed count is dominated by victim payloads, each 4ms.
	if trapped.Completed > 60 {
		t.Fatalf("trapped worker completed %d events — not trapped?", trapped.Completed)
	}
}

// Proactive degradation frees an ET-trapped worker: once the runaway
// connection's backlog crosses the shed threshold, the worker RSTs it and
// returns to serving everyone else (Appendix C case 1).
func TestShedBreaksEdgeTriggeredTrap(t *testing.T) {
	eng := sim.NewEngine(3)
	cfg := DefaultConfig(ModeHermes)
	cfg.Workers = 2
	cfg.EdgeTriggered = true
	cfg.Shed = ShedPolicy{Enabled: true, ConnThreshold: 1 << 20, PendingThreshold: 5}
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var resets int
	lb.OnConnReset = func(kernel.ConnRef) { resets++ }
	lb.Start()

	victim := openConn(t, lb, 1, 8080)
	eng.After(time.Millisecond, func() {
		var feed func(n int)
		feed = func(n int) {
			if n == 0 || victim.Sock().Closed() {
				return
			}
			sendReq(lb, victim, 4*time.Millisecond, false)
			eng.After(time.Millisecond, func() { feed(n - 1) })
		}
		feed(200)
	})
	eng.RunUntil(int64(500 * time.Millisecond))

	if !victim.Sock().Closed() {
		t.Fatal("runaway connection not shed")
	}
	if resets != 1 || lb.ConnsReset != 1 {
		t.Fatalf("resets = %d / %d", resets, lb.ConnsReset)
	}
	// The worker is free again: short requests complete promptly.
	before := lb.Completed
	c := openConn(t, lb, 99, 8080)
	eng.After(time.Millisecond, func() { sendReq(lb, c, 10*time.Microsecond, true) })
	eng.RunUntil(int64(600 * time.Millisecond))
	if lb.Completed != before+1 {
		t.Fatal("worker still trapped after shed")
	}
}
