package l7lb

import (
	"math/rand"
	"testing"
	"time"

	"hermes/internal/sim"
)

func TestUpstreamPoolReuse(t *testing.T) {
	p := NewUpstreamPool(false, 4)
	if p.Acquire(0, 0) {
		t.Fatal("first acquire cannot reuse")
	}
	p.Release(0, 0)
	if !p.Acquire(1, 0) {
		t.Fatal("shared pool must reuse across workers")
	}
	if p.Handshakes != 1 || p.Reuses != 1 {
		t.Fatalf("counts: %d/%d", p.Handshakes, p.Reuses)
	}
}

func TestUpstreamPoolPerWorkerIsolation(t *testing.T) {
	p := NewUpstreamPool(true, 4)
	p.Acquire(0, 0)
	p.Release(0, 0)
	if p.Acquire(1, 0) {
		t.Fatal("per-worker pool must not share across workers")
	}
	if !p.Acquire(0, 0) {
		t.Fatal("per-worker pool must reuse within the worker")
	}
}

func TestUpstreamPoolIdleCap(t *testing.T) {
	p := NewUpstreamPool(false, 2)
	for i := 0; i < 5; i++ {
		p.Release(0, 7)
	}
	if p.IdleTotal() != 2 {
		t.Fatalf("idle = %d, want capped at 2", p.IdleTotal())
	}
	if NewUpstreamPool(false, 0).MaxIdlePerBackend != 4 {
		t.Fatal("default idle cap")
	}
}

// The §7 phenomenon: with requests spread across all workers (Hermes-style),
// per-worker pools pay far more handshakes than a shared pool; with
// concentrated traffic (exclusive-style) the gap shrinks.
func TestUpstreamPoolSpreadVsConcentrated(t *testing.T) {
	const workers = 16
	const backends = 4
	const requests = 20_000

	run := func(perWorker bool, pickWorker func(r *rand.Rand) int) float64 {
		p := NewUpstreamPool(perWorker, 2)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < requests; i++ {
			w := pickWorker(rng)
			b := rng.Intn(backends)
			p.Acquire(w, b)
			p.Release(w, b)
		}
		return p.HandshakeRate()
	}

	spread := func(r *rand.Rand) int { return r.Intn(workers) }
	concentrated := func(r *rand.Rand) int { return r.Intn(2) } // 2 hot workers

	perWorkerSpread := run(true, spread)
	sharedSpread := run(false, spread)
	perWorkerConc := run(true, concentrated)

	if sharedSpread > 0.01 {
		t.Fatalf("shared pool under spread traffic should reuse nearly always: %v", sharedSpread)
	}
	if perWorkerSpread < 2*perWorkerConc {
		t.Fatalf("spreading should hurt per-worker pools: spread %v vs concentrated %v",
			perWorkerSpread, perWorkerConc)
	}
	if perWorkerSpread < 5*sharedSpread {
		t.Fatalf("shared pool should beat per-worker under spread: %v vs %v",
			sharedSpread, perWorkerSpread)
	}
}

// End-to-end §7: under Hermes's even spreading, per-worker upstream pools
// pay many more backend handshakes (and thus higher latency) than a shared
// pool on the identical workload.
func TestUpstreamPoolLatencyEffectUnderHermes(t *testing.T) {
	run := func(perWorker bool) (handshakeRate, avgMS float64) {
		eng := sim.NewEngine(6)
		cfg := DefaultConfig(ModeHermes)
		cfg.Workers = 16
		cfg.Backends = NewBackendPool(4)
		cfg.Upstream = NewUpstreamPool(perWorker, 2)
		lb, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lb.Start()
		for i := 0; i < 2000; i++ {
			i := i
			eng.At(int64(i)*int64(300*time.Microsecond), func() {
				c := openConn(t, lb, uint32(i), 8080)
				eng.After(50*time.Microsecond, func() {
					sendReq(lb, c, 50*time.Microsecond, true)
				})
			})
		}
		eng.RunUntil(int64(2 * time.Second))
		if lb.Completed != 2000 {
			t.Fatalf("completed %d", lb.Completed)
		}
		return cfg.Upstream.HandshakeRate(), lb.Latency.Mean()
	}

	perWorkerRate, perWorkerAvg := run(true)
	sharedRate, sharedAvg := run(false)
	if sharedRate > 0.05 {
		t.Fatalf("shared pool handshake rate %v too high", sharedRate)
	}
	if perWorkerRate < 3*sharedRate {
		t.Fatalf("per-worker pools should miss far more: %v vs %v", perWorkerRate, sharedRate)
	}
	if perWorkerAvg <= sharedAvg {
		t.Fatalf("handshakes should cost latency: per-worker %vms vs shared %vms",
			perWorkerAvg, sharedAvg)
	}
}

func TestBackendForwardingFansOut(t *testing.T) {
	eng := sim.NewEngine(8)
	cfg := DefaultConfig(ModeHermes)
	cfg.Workers = 4
	cfg.Backends = NewBackendPool(5)
	lb, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	for i := 0; i < 500; i++ {
		i := i
		eng.At(int64(i)*int64(200*time.Microsecond), func() {
			c := openConn(t, lb, uint32(i), 8080)
			eng.After(30*time.Microsecond, func() {
				sendReq(lb, c, 20*time.Microsecond, true)
			})
		})
	}
	eng.RunUntil(int64(time.Second))
	var total uint64
	for _, b := range cfg.Backends.Servers() {
		if b.Requests == 0 {
			t.Fatalf("backend %d starved", b.ID)
		}
		total += b.Requests
	}
	if total != 500 {
		t.Fatalf("forwarded %d of 500", total)
	}
}
