package l7lb

import (
	"sort"
	"time"
)

// TenantGuard is the anomaly-detection piece of Appendix C ("exception
// handling case 2"): it attributes worker-hang events to the tenants that
// caused them and quarantines repeat offenders so they can be migrated to a
// sandbox, protecting the other tenants sharing the workers.
//
// Attach it to an LB via LB.Guard before Start; every completed request is
// then accounted to its tenant port.
type TenantGuard struct {
	// HangCost is the per-request CPU cost above which a request counts as
	// a hang event (it blocked the worker's event loop that long).
	HangCost time.Duration
	// QuarantineAfter is the hang-event count that triggers quarantine.
	QuarantineAfter int
	// OnQuarantine fires once per tenant when it crosses the threshold —
	// typically wired to LB.QuarantineTenant (sandbox migration).
	OnQuarantine func(tenant uint16)

	hangs       map[uint16]int
	costNS      map[uint16]int64
	requests    map[uint16]uint64
	quarantined map[uint16]bool
}

// NewTenantGuard creates a guard; hangCost ≤ 0 defaults to 10 ms,
// quarantineAfter ≤ 0 to 10 events.
func NewTenantGuard(hangCost time.Duration, quarantineAfter int) *TenantGuard {
	if hangCost <= 0 {
		hangCost = 10 * time.Millisecond
	}
	if quarantineAfter <= 0 {
		quarantineAfter = 10
	}
	return &TenantGuard{
		HangCost:        hangCost,
		QuarantineAfter: quarantineAfter,
		hangs:           make(map[uint16]int),
		costNS:          make(map[uint16]int64),
		requests:        make(map[uint16]uint64),
		quarantined:     make(map[uint16]bool),
	}
}

// Note accounts one completed request to its tenant.
func (g *TenantGuard) Note(tenant uint16, cost time.Duration) {
	g.requests[tenant]++
	g.costNS[tenant] += int64(cost)
	if cost >= g.HangCost {
		g.hangs[tenant]++
		if g.hangs[tenant] == g.QuarantineAfter && !g.quarantined[tenant] {
			g.quarantined[tenant] = true
			if g.OnQuarantine != nil {
				g.OnQuarantine(tenant)
			}
		}
	}
}

// Quarantined reports whether the tenant has been quarantined.
func (g *TenantGuard) Quarantined(tenant uint16) bool { return g.quarantined[tenant] }

// HangCount returns the tenant's hang-event count.
func (g *TenantGuard) HangCount(tenant uint16) int { return g.hangs[tenant] }

// Offender summarizes one tenant's contribution to worker hangs.
type Offender struct {
	Tenant      uint16
	Hangs       int
	Requests    uint64
	TotalCostNS int64
}

// TopOffenders returns up to k tenants ordered by hang events, then total
// CPU cost — the migration candidates.
func (g *TenantGuard) TopOffenders(k int) []Offender {
	out := make([]Offender, 0, len(g.requests))
	for t := range g.requests {
		out = append(out, Offender{
			Tenant: t, Hangs: g.hangs[t], Requests: g.requests[t], TotalCostNS: g.costNS[t],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hangs != out[j].Hangs {
			return out[i].Hangs > out[j].Hangs
		}
		if out[i].TotalCostNS != out[j].TotalCostNS {
			return out[i].TotalCostNS > out[j].TotalCostNS
		}
		return out[i].Tenant < out[j].Tenant
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// QuarantineTenant migrates a tenant off this LB: its listening sockets are
// closed so further SYNs are refused (the cloud control plane would point
// the tenant's VIP at a sandbox device instead, Appendix C).
func (lb *LB) QuarantineTenant(port uint16) {
	if s := lb.NS.SharedSocket(port); s != nil {
		lb.NS.CloseSocket(s)
	}
	if g := lb.NS.Group(port); g != nil {
		for _, s := range g.Sockets() {
			lb.NS.CloseSocket(s)
		}
	}
}
